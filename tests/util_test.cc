// Unit tests for src/util: modular arithmetic, primes, RNG, aligned
// buffers, thread pool, statistics, and table formatting.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "util/aligned_buffer.h"
#include "util/check.h"
#include "util/modmath.h"
#include "util/primes.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace dcode {
namespace {

// ---------- modmath ----------

TEST(ModMath, PmodMatchesMathematicalResidue) {
  for (int n : {2, 3, 5, 7, 11, 13}) {
    for (int x = -3 * n; x <= 3 * n; ++x) {
      int r = pmod(x, n);
      EXPECT_GE(r, 0);
      EXPECT_LT(r, n);
      EXPECT_EQ((x - r) % n, 0) << "x=" << x << " n=" << n;
    }
  }
}

TEST(ModMath, PmodHandlesLargeMagnitudes) {
  EXPECT_EQ(pmod(int64_t{1} << 40, 7), (1LL << 40) % 7);
  EXPECT_EQ(pmod(-(int64_t{1} << 40), 7), pmod(-((1LL << 40) % 7), 7));
}

// The extreme negative values sit one wrong `-x` away from signed
// overflow; pmod must stay well-defined right up to INT64_MIN.
TEST(ModMath, PmodAtInt64Extremes) {
  for (int n : {2, 3, 5, 7, 11, 13}) {
    for (int64_t k = 0; k < 4; ++k) {
      const int64_t lo = std::numeric_limits<int64_t>::min() + k;
      const int r = pmod(lo, n);
      EXPECT_GE(r, 0);
      EXPECT_LT(r, n);
      // Same residue as the mathematically-reduced value.
      EXPECT_EQ(r, pmod(lo % n, n)) << "x=min+" << k << " n=" << n;

      const int64_t hi = std::numeric_limits<int64_t>::max() - k;
      const int rh = pmod(hi, n);
      EXPECT_GE(rh, 0);
      EXPECT_LT(rh, n);
      EXPECT_EQ(rh, static_cast<int>(hi % n)) << "x=max-" << k << " n=" << n;
    }
  }
  static_assert(pmod(std::numeric_limits<int64_t>::min(), 2) == 0);
}

TEST(ModMath, ModPowZeroExponent) {
  for (int n : {2, 3, 7, 13}) {
    for (int x = -5; x <= 5; ++x) {
      EXPECT_EQ(mod_pow(x, 0, n), 1 % n) << "x=" << x << " n=" << n;
    }
  }
  // x^0 mod 1 is 0, not 1 — the empty product still reduces mod n.
  EXPECT_EQ(mod_pow(3, 0, 1), 0);
  EXPECT_EQ(mod_pow(0, 0, 7), 1);  // convention: 0^0 == 1
  static_assert(mod_pow(5, 0, 7) == 1);
}

TEST(ModMath, InverseIsInverse) {
  for (int p : {5, 7, 11, 13, 17}) {
    for (int a = 1; a < p; ++a) {
      EXPECT_EQ(pmod(static_cast<int64_t>(a) * mod_inverse(a, p), p), 1)
          << "a=" << a << " p=" << p;
    }
  }
}

TEST(ModMath, ModPowAgreesWithRepeatedMultiplication) {
  for (int p : {7, 13}) {
    for (int x = 0; x < p; ++x) {
      int64_t acc = 1;
      for (int e = 0; e <= 8; ++e) {
        EXPECT_EQ(mod_pow(x, e, p), static_cast<int>(acc));
        acc = acc * x % p;
      }
    }
  }
}

// ---------- primes ----------

TEST(Primes, IsPrimeAgainstSieve) {
  std::vector<bool> composite(1000, false);
  for (int i = 2; i < 1000; ++i) {
    if (composite[static_cast<size_t>(i)]) continue;
    for (int j = 2 * i; j < 1000; j += i) composite[static_cast<size_t>(j)] = true;
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(is_prime(i), i >= 2 && !composite[static_cast<size_t>(i)])
        << "i=" << i;
  }
}

TEST(Primes, RangeEnumeration) {
  EXPECT_EQ(primes_in_range(5, 13), (std::vector<int>{5, 7, 11, 13}));
  EXPECT_TRUE(primes_in_range(24, 28).empty());
  EXPECT_EQ(primes_in_range(2, 2), std::vector<int>{2});
}

TEST(Primes, NextPrime) {
  EXPECT_EQ(next_prime(-5), 2);
  EXPECT_EQ(next_prime(6), 7);
  EXPECT_EQ(next_prime(7), 7);
  EXPECT_EQ(next_prime(14), 17);
}

// ---------- rng ----------

TEST(Rng, DeterministicForSeed) {
  Pcg32 a(123, 7), b(123, 7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Rng, StreamsDiffer) {
  Pcg32 a(123, 1), b(123, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u32() == b.next_u32();
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowIsInRangeAndCoversIt) {
  Pcg32 rng(99);
  std::set<uint32_t> seen;
  for (int i = 0; i < 2000; ++i) {
    uint32_t v = rng.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextInRangeInclusive) {
  Pcg32 rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int v = rng.next_in_range(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
    saw_lo |= v == 3;
    saw_hi |= v == 9;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, FillBytesCoversOddLengths) {
  Pcg32 rng(1);
  for (size_t len : {0u, 1u, 3u, 4u, 7u, 31u, 64u}) {
    std::vector<uint8_t> buf(len + 4, 0xAA);
    rng.fill_bytes(buf.data(), len);
    // Guard bytes untouched.
    for (size_t i = len; i < buf.size(); ++i) EXPECT_EQ(buf[i], 0xAA);
  }
}

TEST(Rng, RoughlyUniformDoubles) {
  Pcg32 rng(77);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

// ---------- aligned buffer ----------

TEST(AlignedBuffer, AlignmentAndZeroInit) {
  for (size_t sz : {1u, 63u, 64u, 65u, 4096u}) {
    AlignedBuffer b(sz);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(b.data()) % AlignedBuffer::kAlignment,
              0u);
    EXPECT_EQ(b.size(), sz);
    for (size_t i = 0; i < sz; ++i) EXPECT_EQ(b[i], 0);
  }
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer a(128);
  a[0] = 42;
  uint8_t* p = a.data();
  AlignedBuffer b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b[0], 42);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_TRUE(a.empty());

  AlignedBuffer c(16);
  c = std::move(b);
  EXPECT_EQ(c.data(), p);
  EXPECT_EQ(c.size(), 128u);
}

TEST(AlignedBuffer, ZeroClears) {
  AlignedBuffer a(64);
  for (size_t i = 0; i < 64; ++i) a[i] = static_cast<uint8_t>(i + 1);
  a.zero();
  for (size_t i = 0; i < 64; ++i) EXPECT_EQ(a[i], 0);
}

TEST(AlignedBuffer, EmptyBufferIsSafe) {
  AlignedBuffer a;
  EXPECT_TRUE(a.empty());
  AlignedBuffer b(std::move(a));
  EXPECT_TRUE(b.empty());
}

// ---------- thread pool ----------

TEST(ThreadPool, RunsEveryIterationExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ChunkedCoversRangeWithoutOverlap) {
  ThreadPool pool(3);
  std::atomic<size_t> total{0};
  pool.parallel_for_chunked(101, [&](size_t begin, size_t end) {
    EXPECT_LE(begin, end);
    total.fetch_add(end - begin);
  });
  EXPECT_EQ(total.load(), 101u);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(64,
                                 [](size_t i) {
                                   if (i == 13) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // Pool remains usable afterwards.
  std::atomic<int> n{0};
  pool.parallel_for(8, [&](size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 8);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.parallel_for_chunked(10, [&](size_t, size_t) {
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPool, ReusableAcrossManyRounds) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> n{0};
    pool.parallel_for(17, [&](size_t) { n.fetch_add(1); });
    ASSERT_EQ(n.load(), 17);
  }
}

// Regression: the original pool tracked completion with one global
// in-flight counter, so a nested parallel_for from inside a worker waited
// for its own chunk to retire and deadlocked.
TEST(ThreadPool, NestedParallelForCompletesWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner{0};
  pool.parallel_for(4, [&](size_t) {
    pool.parallel_for(8, [&](size_t) { inner.fetch_add(1); });
  });
  EXPECT_EQ(inner.load(), 4 * 8);

  // Deeper nesting (inline all the way down) must also terminate.
  std::atomic<int> deep{0};
  pool.parallel_for(2, [&](size_t) {
    pool.parallel_for(2, [&](size_t) {
      pool.parallel_for(2, [&](size_t) { deep.fetch_add(1); });
    });
  });
  EXPECT_EQ(deep.load(), 8);
}

// Regression: with a global counter, wait_idle() returned only when *all*
// callers' tasks had retired, so concurrent callers blocked on each
// other's work and could wake before their own chunks had run.
TEST(ThreadPool, ConcurrentCallersCompleteIndependently) {
  ThreadPool pool(4);
  constexpr int kCallers = 6;
  constexpr int kRounds = 25;
  constexpr int kItems = 40;
  std::vector<std::atomic<int>> counts(kCallers);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        std::atomic<int> this_round{0};
        pool.parallel_for(kItems, [&](size_t) {
          this_round.fetch_add(1);
          counts[static_cast<size_t>(t)].fetch_add(1);
        });
        // parallel_for returning means *this call's* iterations all ran.
        ASSERT_EQ(this_round.load(), kItems);
      }
    });
  }
  for (auto& th : callers) th.join();
  for (auto& c : counts) EXPECT_EQ(c.load(), kRounds * kItems);
}

// An exception belongs to the call whose task threw; a concurrent healthy
// call must neither observe it nor lose iterations.
TEST(ThreadPool, ExceptionAttributedToThrowingCallOnly) {
  ThreadPool pool(4);
  std::atomic<int> healthy_iterations{0};
  std::thread healthy([&] {
    for (int round = 0; round < 20; ++round) {
      EXPECT_NO_THROW(pool.parallel_for(
          64, [&](size_t) { healthy_iterations.fetch_add(1); }));
    }
  });
  for (int round = 0; round < 20; ++round) {
    EXPECT_THROW(pool.parallel_for(64,
                                   [](size_t i) {
                                     if (i % 7 == 0) {
                                       throw std::runtime_error("boom");
                                     }
                                   }),
                 std::runtime_error);
  }
  healthy.join();
  EXPECT_EQ(healthy_iterations.load(), 20 * 64);
}

// A throw inside a nested (inline) parallel_for surfaces on the outermost
// caller, not std::terminate.
TEST(ThreadPool, NestedExceptionSurfacesOnOuterCaller) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(6,
                        [&](size_t i) {
                          pool.parallel_for(6, [i](size_t j) {
                            if (i == 2 && j == 3) {
                              throw std::runtime_error("nested boom");
                            }
                          });
                        }),
      std::runtime_error);
  // Pool remains usable afterwards.
  std::atomic<int> n{0};
  pool.parallel_for(12, [&](size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 12);
}

// ---------- stats ----------

TEST(Stats, BasicMoments) {
  Accumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, EmptyAccumulatorIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.stddev(), 0.0);
}

TEST(Stats, MergeMatchesSequential) {
  Pcg32 rng(3);
  Accumulator all, a, b;
  for (int i = 0; i < 500; ++i) {
    double v = rng.next_double() * 100;
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

// ---------- table ----------

TEST(Table, AlignsAndPrints) {
  TablePrinter t({"code", "p=5", "p=7"});
  t.add_numeric_row("dcode", {1.0, 2.5});
  t.add_row({"xcode", "1.00", "9.99"});
  std::ostringstream os;
  t.print(os);
  std::string s = os.str();
  EXPECT_NE(s.find("dcode"), std::string::npos);
  EXPECT_NE(s.find("2.50"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, CsvOutput) {
  TablePrinter t({"a", "b"});
  t.add_numeric_row("x", {1.25}, 2);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\nx,1.25\n");
}

TEST(Table, RejectsMismatchedRow) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
  EXPECT_THROW(t.add_numeric_row("x", {1.0, 2.0, 3.0}), std::logic_error);
}

TEST(Check, MacrosThrowWithContext) {
  try {
    DCODE_CHECK(1 == 2, "math broke");
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("math broke"), std::string::npos);
  }
}

}  // namespace
}  // namespace dcode

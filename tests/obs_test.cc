// Tests for the observability layer: sharded metrics (exact sums under
// concurrency), histogram bucket semantics, registry identity and
// exposition formats, and the structured trace log.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dcode::obs {
namespace {

// ---------------------------------------------------------------- counters

TEST(Counter, ConcurrentIncrementsSumExactly) {
  Registry reg;
  Counter& c = reg.counter("test.hits");
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIters; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), int64_t{kThreads} * kIters);
}

TEST(Counter, WeightedIncrementsAndReset) {
  Registry reg;
  Counter& c = reg.counter("test.bytes");
  c.inc(5);
  c.inc(37);
  EXPECT_EQ(c.value(), 42);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

// ------------------------------------------------------------------ gauges

TEST(Gauge, SetAddSubUpdateMax) {
  Registry reg;
  Gauge& g = reg.gauge("test.depth");
  g.set(10);
  g.add(5);
  g.sub(3);
  EXPECT_EQ(g.value(), 12);
  g.update_max(7);  // below current: no effect
  EXPECT_EQ(g.value(), 12);
  g.update_max(40);
  EXPECT_EQ(g.value(), 40);
}

TEST(Gauge, ConcurrentUpdateMaxKeepsMaximum) {
  Registry reg;
  Gauge& g = reg.gauge("test.hwm");
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g, t] {
      for (int i = 0; i < 5000; ++i) g.update_max(t * 5000 + i);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(g.value(), (kThreads - 1) * 5000 + 4999);
}

// -------------------------------------------------------------- histograms

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
  Registry reg;
  Histogram& h = reg.histogram("test.sizes", {10, 100, 1000});
  h.observe(0);     // bucket 0
  h.observe(10);    // bucket 0 (le 10 is inclusive)
  h.observe(11);    // bucket 1
  h.observe(100);   // bucket 1
  h.observe(1000);  // bucket 2
  h.observe(1001);  // overflow
  auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 1);
  EXPECT_EQ(h.count(), 6);
  EXPECT_EQ(h.sum(), 0 + 10 + 11 + 100 + 1000 + 1001);
}

TEST(Histogram, ConcurrentObservesCountAndSumExactly) {
  Registry reg;
  Histogram& h = reg.histogram("test.lat", exponential_bounds(1, 2.0, 10));
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kIters; ++i) h.observe(i % 700);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), int64_t{kThreads} * kIters);
  int64_t per_thread_sum = 0;
  for (int i = 0; i < kIters; ++i) per_thread_sum += i % 700;
  EXPECT_EQ(h.sum(), kThreads * per_thread_sum);
  int64_t bucket_total = 0;
  for (int64_t b : h.bucket_counts()) bucket_total += b;
  EXPECT_EQ(bucket_total, h.count());
}

TEST(Histogram, StandardBoundsAreStrictlyAscending) {
  for (const auto* bounds : {&latency_bounds_ns(), &size_bounds_bytes()}) {
    ASSERT_FALSE(bounds->empty());
    for (size_t i = 1; i < bounds->size(); ++i) {
      EXPECT_LT((*bounds)[i - 1], (*bounds)[i]);
    }
  }
  auto exp = exponential_bounds(100, 4.0, 5);
  ASSERT_EQ(exp.size(), 5u);
  EXPECT_EQ(exp[0], 100);
  EXPECT_EQ(exp[1], 400);
  EXPECT_EQ(exp[4], 25600);
}

// ---------------------------------------------------------------- registry

TEST(Registry, SameNameAndLabelsReturnsSameMetric) {
  Registry reg;
  Counter& a = reg.counter("x.hits", {{"disk", "0"}});
  Counter& b = reg.counter("x.hits", {{"disk", "0"}});
  Counter& c = reg.counter("x.hits", {{"disk", "1"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(Registry, KindMismatchThrows) {
  Registry reg;
  reg.counter("x.thing");
  EXPECT_THROW(reg.gauge("x.thing"), std::logic_error);
  reg.histogram("x.h", {1, 2});
  EXPECT_THROW(reg.histogram("x.h", {1, 2, 3}), std::logic_error);
}

TEST(Registry, NamespacedViewPrefixesNamesIntoRoot) {
  Registry root;
  Registry& s0 = root.namespaced("shard0.");
  Registry& s1 = root.namespaced("shard1.");
  s0.counter("raid.reads").inc(3);
  s1.counter("raid.reads").inc(5);
  root.counter("pool.reads").inc(1);

  // Same metric object whether reached through the view or the root.
  EXPECT_EQ(&s0.counter("raid.reads"), &root.counter("shard0.raid.reads"));
  EXPECT_EQ(root.counter("shard0.raid.reads").value(), 3);
  EXPECT_EQ(root.counter("shard1.raid.reads").value(), 5);

  // Same prefix returns the same view; views see only their namespace.
  EXPECT_EQ(&root.namespaced("shard0."), &s0);
  EXPECT_EQ(root.size(), 3u);
  EXPECT_EQ(s0.size(), 1u);
  RegistrySnapshot snap = s1.snapshot();
  ASSERT_EQ(snap.metrics.size(), 1u);
  EXPECT_EQ(snap.metrics[0].name, "shard1.raid.reads");
  EXPECT_EQ(snap.metrics[0].value, 5);
}

TEST(Registry, NamespacedViewsNestAndResetOnlyTheirNamespace) {
  Registry root;
  Registry& child = root.namespaced("a.");
  Registry& grand = child.namespaced("b.");
  EXPECT_EQ(grand.prefix(), "a.b.");
  grand.counter("hits").inc(7);
  EXPECT_EQ(root.counter("a.b.hits").value(), 7);

  root.counter("other").inc(9);
  child.reset();  // clears a.* only
  EXPECT_EQ(root.counter("a.b.hits").value(), 0);
  EXPECT_EQ(root.counter("other").value(), 9);

  // Histograms and gauges delegate too, including the bounds check.
  grand.histogram("h", {1, 2});
  EXPECT_THROW(root.histogram("a.b.h", {1, 2, 3}), std::logic_error);
  grand.gauge("g").set(4);
  EXPECT_EQ(root.gauge("a.b.g").value(), 4);
}

TEST(Registry, NamespacedCollectorRunsOnAnyViewSnapshot) {
  Registry root;
  Registry& view = root.namespaced("s.");
  Gauge& g = view.gauge("level");
  auto id = view.add_collector([&g] { g.add(1); });
  (void)view.snapshot();
  (void)root.snapshot();  // root snapshots run the same collector set
  EXPECT_EQ(root.gauge("s.level").value(), 2);
  view.remove_collector(id);
  (void)root.snapshot();
  EXPECT_EQ(root.gauge("s.level").value(), 2);
}

TEST(Registry, SnapshotWhileWritingSeesConsistentMonotonicValues) {
  Registry reg;
  Counter& c = reg.counter("race.hits");
  Histogram& h = reg.histogram("race.lat", {8, 64, 512});
  constexpr int kWriters = 4;
  constexpr int kIters = 50000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        c.inc();
        h.observe(33);
      }
    });
  }
  int64_t last_counter = 0;
  int64_t last_count = 0;
  for (int i = 0; i < 200; ++i) {
    RegistrySnapshot snap = reg.snapshot();
    for (const auto& m : snap.metrics) {
      if (m.name == "race.hits") {
        EXPECT_GE(m.value, last_counter);
        last_counter = m.value;
      } else if (m.name == "race.lat") {
        EXPECT_GE(m.count, last_count);
        last_count = m.count;
        int64_t total = 0;
        for (int64_t b : m.bucket_counts) total += b;
        // Bucket add and sum/count adds are separate relaxed ops, so a
        // snapshot may catch an observe between them — but never more
        // buckets than observes started.
        EXPECT_LE(total - m.count, kWriters);
        EXPECT_GE(total, 0);
      }
    }
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(c.value(), int64_t{kWriters} * kIters);
  EXPECT_EQ(h.count(), int64_t{kWriters} * kIters);
}

TEST(Registry, CollectorRunsOnSnapshotAndCanBeRemoved) {
  Registry reg;
  Gauge& g = reg.gauge("pull.value");
  int pulls = 0;
  auto id = reg.add_collector([&] { g.set(++pulls); });
  reg.snapshot();
  reg.snapshot();
  EXPECT_EQ(pulls, 2);
  reg.remove_collector(id);
  reg.snapshot();
  EXPECT_EQ(pulls, 2);
}

TEST(Registry, ExpositionFormats) {
  Registry reg;
  reg.counter("io.reads", {{"disk", "3"}}, "element reads").inc(7);
  reg.gauge("io.depth").set(2);
  Histogram& h = reg.histogram("io.lat_ns", {100, 1000});
  h.observe(50);
  h.observe(500);
  h.observe(5000);

  std::ostringstream text;
  reg.write_text(text);
  EXPECT_NE(text.str().find("io.reads"), std::string::npos);
  EXPECT_NE(text.str().find("disk=3"), std::string::npos);

  std::ostringstream json;
  reg.write_json(json);
  EXPECT_NE(json.str().find("\"name\":\"io.reads\""), std::string::npos);
  EXPECT_NE(json.str().find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(json.str().find("\"disk\":\"3\""), std::string::npos);

  std::ostringstream prom;
  reg.write_prometheus(prom);
  const std::string p = prom.str();
  // Dots sanitize to underscores; histograms expose cumulative buckets
  // plus _sum and _count.
  EXPECT_NE(p.find("io_reads{disk=\"3\"} 7"), std::string::npos);
  EXPECT_NE(p.find("# TYPE io_reads counter"), std::string::npos);
  EXPECT_NE(p.find("io_lat_ns_bucket{le=\"100\"} 1"), std::string::npos);
  EXPECT_NE(p.find("io_lat_ns_bucket{le=\"1000\"} 2"), std::string::npos);
  EXPECT_NE(p.find("io_lat_ns_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(p.find("io_lat_ns_sum 5550"), std::string::npos);
  EXPECT_NE(p.find("io_lat_ns_count 3"), std::string::npos);
}

// ------------------------------------------------------------- json writer

TEST(JsonWriter, EscapesAndNesting) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("s").value("a\"b\\c\n");
  w.key("arr").begin_array().value(int64_t{1}).value(2.5).null().end_array();
  w.key("inf").value(std::numeric_limits<double>::infinity());
  w.end_object();
  EXPECT_EQ(os.str(),
            "{\"s\":\"a\\\"b\\\\c\\n\",\"arr\":[1,2.5,null],\"inf\":null}");
}

// ------------------------------------------------------------------- trace

TEST(Trace, DisabledLogWritesNothingAndSpansAreFree) {
  TraceLog log;
  EXPECT_FALSE(log.enabled());
  log.event("ignored");
  {
    Span s(log, "outer");
    EXPECT_EQ(s.id(), 0u);
    s.note("also ignored");
  }
  EXPECT_EQ(log.events_written(), 0);
}

TEST(Trace, NestedSpansRecordParentAndDuration) {
  TraceLog log;
  std::ostringstream os;
  log.attach(&os);
  uint64_t outer_id = 0;
  {
    Span outer(log, "rebuild", {{"disks", 2}, {"code", "dcode"}});
    ASSERT_NE(outer.id(), 0u);
    outer_id = outer.id();
    {
      Span inner(log, "stripe");
      EXPECT_NE(inner.id(), outer.id());
      inner.note("element", {{"row", 3}, {"ok", true}});
    }
    outer.note("done", {{"ratio", 0.5}});
  }
  log.close();

  std::vector<std::string> lines;
  std::istringstream in(os.str());
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  // span_begin(outer), span_begin(inner), event, span_end(inner),
  // event, span_end(outer)
  ASSERT_EQ(lines.size(), 6u);
  EXPECT_NE(lines[0].find("\"type\":\"span_begin\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"name\":\"rebuild\""), std::string::npos);
  // Top-level span: the parent key is omitted entirely.
  EXPECT_EQ(lines[0].find("\"parent\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"code\":\"dcode\""), std::string::npos);
  // The inner span's parent is the outer span's id.
  EXPECT_NE(lines[1].find("\"parent\":" + std::to_string(outer_id)),
            std::string::npos);
  EXPECT_NE(lines[2].find("\"type\":\"event\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"row\":3"), std::string::npos);
  EXPECT_NE(lines[2].find("\"ok\":true"), std::string::npos);
  EXPECT_NE(lines[3].find("\"type\":\"span_end\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"dur_ns\""), std::string::npos);
  EXPECT_NE(lines[4].find("\"ratio\":0.5"), std::string::npos);
  EXPECT_NE(lines[5].find("\"name\":\"rebuild\""), std::string::npos);
  EXPECT_EQ(log.events_written(), 6);
}

TEST(Trace, EveryLineIsAFlatJsonObject) {
  TraceLog log;
  std::ostringstream os;
  log.attach(&os);
  {
    Span s(log, "scrub", {{"stripes", int64_t{128}}});
    s.note("inconsistent", {{"stripe", int64_t{17}}});
  }
  log.close();
  std::istringstream in(os.str());
  int n = 0;
  for (std::string line; std::getline(in, line); ++n) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    // Balanced quotes: even count means no unterminated string (escaped
    // quotes never appear in these fixed names).
    int quotes = 0;
    for (char ch : line) quotes += ch == '"';
    EXPECT_EQ(quotes % 2, 0) << line;
  }
  // span_begin + event + span_end.
  EXPECT_EQ(n, 3);
}

}  // namespace
}  // namespace dcode::obs

// Repair-mode scrub: syndrome-based localization of single-element silent
// corruption, degraded-array tolerance, and the unrepairable cases where
// guessing would be worse than reporting.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "codes/registry.h"
#include "raid/raid6_array.h"
#include "util/rng.h"

namespace dcode::raid {
namespace {

constexpr size_t kElem = 256;
constexpr int64_t kStripes = 4;

std::vector<uint8_t> random_blob(Pcg32& rng, size_t n) {
  std::vector<uint8_t> v(n);
  rng.fill_bytes(v.data(), n);
  return v;
}

// Deterministic silent corruption through the unaccounted device
// backdoor: flip a run of bits in one element so the delta can never
// accidentally be zero.
void flip_element_bytes(Raid6Array& array, int disk, int64_t stripe, int row,
                        int rows, size_t nbytes) {
  const uint64_t offset =
      (static_cast<uint64_t>(stripe) * static_cast<uint64_t>(rows) +
       static_cast<uint64_t>(row)) *
      kElem;
  std::vector<uint8_t> buf(nbytes);
  array.disk(disk).read(offset, buf);
  for (auto& b : buf) b ^= 0xA5;
  array.disk(disk).write(offset, buf);
}

// The acceptance matrix: D-Code plus a comparison code, two primes each.
class ScrubRepair
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {
 protected:
  std::unique_ptr<codes::CodeLayout> layout() const {
    return codes::make_layout(std::get<0>(GetParam()), std::get<1>(GetParam()));
  }
};

INSTANTIATE_TEST_SUITE_P(
    CodesAndPrimes, ScrubRepair,
    ::testing::Combine(::testing::Values("dcode", "rdp"),
                       ::testing::Values(5, 7)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

TEST_P(ScrubRepair, RestoresByteIdenticalDataForAnyCorruptedDisk) {
  auto lay = layout();
  const int rows = lay->rows();
  const int cols = lay->cols();
  Raid6Array array(std::move(lay), kElem, kStripes, 2);
  Pcg32 rng(21);
  auto blob = random_blob(rng, static_cast<size_t>(array.capacity()));
  array.write(0, blob);
  ASSERT_EQ(array.scrub(), 0);

  // Every disk in turn — data and parity elements alike. Repair restores
  // the array exactly, so one array serves the whole sweep.
  for (int d = 0; d < cols; ++d) {
    const int row = d % rows;
    flip_element_bytes(array, d, /*stripe=*/1, row, rows, kElem / 2);
    ScrubReport report = array.scrub_report({.repair = true});
    EXPECT_EQ(report.inconsistent_stripes, std::vector<int64_t>({1}))
        << "disk " << d;
    EXPECT_EQ(report.elements_located, 1) << "disk " << d;
    EXPECT_EQ(report.elements_repaired, 1) << "disk " << d;
    EXPECT_EQ(report.stripes_unrepairable, 0) << "disk " << d;
    EXPECT_EQ(array.scrub(), 0) << "disk " << d;
    std::vector<uint8_t> out(static_cast<size_t>(array.capacity()));
    array.read(0, out);
    EXPECT_EQ(out, blob) << "disk " << d;
  }
}

TEST_P(ScrubRepair, DetectOnlyModeLocatesNothing) {
  auto lay = layout();
  const int rows = lay->rows();
  Raid6Array array(std::move(lay), kElem, kStripes, 1);
  Pcg32 rng(22);
  auto blob = random_blob(rng, static_cast<size_t>(array.capacity()));
  array.write(0, blob);

  flip_element_bytes(array, 0, /*stripe=*/2, 0, rows, 16);
  ScrubReport report = array.scrub_report();
  EXPECT_EQ(report.inconsistent_stripes, std::vector<int64_t>({2}));
  EXPECT_EQ(report.elements_located, 0);
  EXPECT_EQ(report.elements_repaired, 0);
  EXPECT_GT(report.equations_checked, 0);
  EXPECT_EQ(report.equations_skipped, 0);
  // Still corrupt: detect-only must not have written anything.
  EXPECT_EQ(array.scrub(), 1);
}

TEST(ScrubDegraded, SkipsDeadEquationsInsteadOfCrashing) {
  obs::Registry reg;
  Raid6Array array(codes::make_layout("dcode", 7), kElem, kStripes, 2, &reg);
  Pcg32 rng(23);
  auto blob = random_blob(rng, static_cast<size_t>(array.capacity()));
  array.write(0, blob);

  array.fail_disk(3);  // no spares: the array stays degraded
  ASSERT_EQ(array.failed_disk_count(), 1);
  ScrubReport report = array.scrub_report();  // must not throw
  EXPECT_TRUE(report.inconsistent_stripes.empty());
  EXPECT_GT(report.equations_skipped, 0);
  EXPECT_GT(report.equations_checked, 0);
  EXPECT_EQ(reg.counter("raid.scrub.equations_skipped").value(),
            report.equations_skipped);
}

TEST(ScrubDegraded, RepairOnDegradedStripeIsUnrepairable) {
  auto lay = codes::make_layout("dcode", 7);
  const int rows = lay->rows();
  Raid6Array array(std::move(lay), kElem, kStripes, 2);
  Pcg32 rng(24);
  auto blob = random_blob(rng, static_cast<size_t>(array.capacity()));
  array.write(0, blob);

  flip_element_bytes(array, 1, /*stripe=*/0, 0, rows, 16);
  array.fail_disk(5);
  // Parity-only contract (use_checksums=false): with equations skipped,
  // membership comparison is unsound — report, don't guess. (The
  // checksum channel CAN localize through a degraded stripe; that
  // stronger contract is integrity_test's to prove.)
  ScrubReport report =
      array.scrub_report({.repair = true, .use_checksums = false});
  if (!report.inconsistent_stripes.empty()) {
    EXPECT_EQ(report.elements_repaired, 0);
    EXPECT_EQ(report.stripes_unrepairable,
              static_cast<int64_t>(report.inconsistent_stripes.size()));
    EXPECT_EQ(report.stripes_skipped_degraded, report.stripes_unrepairable);
    EXPECT_EQ(report.stripes_family_disagreement, 0);
  }
}

TEST(ScrubRepairLimits, TwoCorruptElementsInOneStripeAreUnrepairable) {
  auto lay = codes::make_layout("dcode", 7);
  const int rows = lay->rows();
  Raid6Array array(std::move(lay), kElem, kStripes, 2);
  Pcg32 rng(25);
  auto blob = random_blob(rng, static_cast<size_t>(array.capacity()));
  array.write(0, blob);

  flip_element_bytes(array, 0, /*stripe=*/1, 0, rows, 16);
  flip_element_bytes(array, 2, /*stripe=*/1, 1, rows, 32);
  // Parity-only contract (use_checksums=false): two damaged elements
  // make the parity families disagree on membership, so syndrome
  // localization must refuse. (integrity_test proves the checksum
  // channel repairs this same shape.)
  ScrubReport report =
      array.scrub_report({.repair = true, .use_checksums = false});
  EXPECT_EQ(report.inconsistent_stripes, std::vector<int64_t>({1}));
  EXPECT_EQ(report.elements_repaired, 0);
  EXPECT_EQ(report.stripes_unrepairable, 1);
  EXPECT_EQ(report.stripes_family_disagreement, 1);
  EXPECT_EQ(report.stripes_skipped_degraded, 0);
  // Nothing was written: the stripe stays flagged rather than being
  // "repaired" into silent garbage. (Recovery needs a backup rewrite
  // plus re-encode — parity-delta RMW writes would carry the damage.)
  EXPECT_EQ(array.scrub(), 1);
}

TEST(ScrubRepairLimits, RepairsIndependentCorruptionsInSeparateStripes) {
  auto lay = codes::make_layout("rdp", 7);
  const int rows = lay->rows();
  Raid6Array array(std::move(lay), kElem, kStripes, 2);
  Pcg32 rng(26);
  auto blob = random_blob(rng, static_cast<size_t>(array.capacity()));
  array.write(0, blob);

  flip_element_bytes(array, 1, /*stripe=*/0, 0, rows, 8);
  flip_element_bytes(array, 4, /*stripe=*/3, 2, rows, 64);
  ScrubReport report = array.scrub_report({.repair = true});
  EXPECT_EQ(report.inconsistent_stripes, std::vector<int64_t>({0, 3}));
  EXPECT_EQ(report.elements_located, 2);
  EXPECT_EQ(report.elements_repaired, 2);
  EXPECT_EQ(array.scrub(), 0);
  std::vector<uint8_t> out(static_cast<size_t>(array.capacity()));
  array.read(0, out);
  EXPECT_EQ(out, blob);
}

}  // namespace
}  // namespace dcode::raid

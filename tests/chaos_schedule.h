// Deterministic chaos schedules for the self-healing campaign.
//
// A seed expands — via the repo's own Pcg32, no global entropy — into a
// fixed per-round sequence of fault events, so every campaign run with
// the same seed injects the same faults in the same order. One event per
// round keeps the invariants provable: the campaign quiesces and
// repair-scrubs between rounds, so every round starts from a verified
// healthy array and at most one fault family is in play at a time
// (concurrent double fail-stop is its own event kind, still within
// RAID-6 tolerance).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace dcode::raid {

enum class ChaosFault {
  kNone,             // a quiet round: pure workload
  kFailStop,         // one disk dies mid-workload
  kDoubleFailStop,   // two disks die back to back (tolerance boundary)
  kTransientShort,   // a burst the engine's retry budget absorbs
  kTransientLong,    // a burst that exhausts retries and escalates
  kSilentCorruption, // bytes flipped behind the array's back
  kPowerLoss,        // crash after a small element-write budget
  // The acknowledged-but-wrong write families parity alone cannot
  // express (only the checksum sidecar catches them):
  kMisdirectedWrite, // writes land at a shifted LBA, acked complete
  kTornWrite,        // only a payload prefix persists, acked complete
  kLostWrite,        // writes dropped on the floor, acked complete
};

inline const char* to_string(ChaosFault f) {
  switch (f) {
    case ChaosFault::kNone: return "none";
    case ChaosFault::kFailStop: return "fail_stop";
    case ChaosFault::kDoubleFailStop: return "double_fail_stop";
    case ChaosFault::kTransientShort: return "transient_short";
    case ChaosFault::kTransientLong: return "transient_long";
    case ChaosFault::kSilentCorruption: return "silent_corruption";
    case ChaosFault::kPowerLoss: return "power_loss";
    case ChaosFault::kMisdirectedWrite: return "misdirected_write";
    case ChaosFault::kTornWrite: return "torn_write";
    case ChaosFault::kLostWrite: return "lost_write";
  }
  return "unknown";
}

struct ChaosEvent {
  ChaosFault kind = ChaosFault::kNone;
  int disk = 0;      // primary target
  int disk2 = 0;     // second target (kDoubleFailStop only; != disk)
  int64_t param = 0; // burst length / write budget / corrupt byte count
};

struct ChaosSchedule {
  uint64_t seed = 0;
  std::vector<ChaosEvent> rounds;
};

inline ChaosSchedule make_chaos_schedule(uint64_t seed, int rounds,
                                         int disks) {
  ChaosSchedule sched;
  sched.seed = seed;
  Pcg32 rng(seed);
  sched.rounds.reserve(static_cast<size_t>(rounds));
  for (int i = 0; i < rounds; ++i) {
    ChaosEvent ev;
    // Weighted fault mix; every family appears with decent probability
    // within an 8-round campaign across the seed set.
    switch (rng.next_below(17)) {
      case 0:
        ev.kind = ChaosFault::kNone;
        break;
      case 1:
      case 2:
      case 3:
        ev.kind = ChaosFault::kFailStop;
        break;
      case 4:
        ev.kind = ChaosFault::kDoubleFailStop;
        break;
      case 5:
      case 6:
        ev.kind = ChaosFault::kTransientShort;
        ev.param = 2;
        break;
      case 7:
      case 8:
        ev.kind = ChaosFault::kTransientLong;
        ev.param = 64;
        break;
      case 9:
      case 10:
      case 11:
        ev.kind = ChaosFault::kSilentCorruption;
        ev.param = 8 + static_cast<int64_t>(rng.next_below(48));
        break;
      case 12:
      case 13:
        ev.kind = ChaosFault::kPowerLoss;
        ev.param = 1 + static_cast<int64_t>(rng.next_below(40));
        break;
      case 14:
        // param = LBA slip in whole elements (the campaign multiplies by
        // the element size — a firmware-style aligned misdirection).
        ev.kind = ChaosFault::kMisdirectedWrite;
        ev.param = 1 + static_cast<int64_t>(rng.next_below(7));
        break;
      case 15:
        // param = payload bytes that persist before the tear.
        ev.kind = ChaosFault::kTornWrite;
        ev.param = 1 + static_cast<int64_t>(rng.next_below(96));
        break;
      default:
        // param = writes dropped on the floor.
        ev.kind = ChaosFault::kLostWrite;
        ev.param = 1 + static_cast<int64_t>(rng.next_below(3));
        break;
    }
    ev.disk = static_cast<int>(rng.next_below(static_cast<uint32_t>(disks)));
    ev.disk2 = static_cast<int>(
        rng.next_below(static_cast<uint32_t>(disks - 1)));
    if (ev.disk2 >= ev.disk) ++ev.disk2;  // distinct second target
    sched.rounds.push_back(ev);
  }
  return sched;
}

// Concurrent inter-stripe schedule family: faults struck while two (or
// more) submitters race pipelined writes across *distinct* stripe
// regions. Restricted to the families whose invariants are interesting
// under true inter-stripe concurrency — fail-stop (single and double)
// racing the failover replay contract, and power loss racing the
// journal — plus quiet rounds so pure concurrent merging is exercised
// with no fault at all.
inline ChaosSchedule make_concurrent_chaos_schedule(uint64_t seed,
                                                    int rounds, int disks) {
  ChaosSchedule sched;
  sched.seed = seed;
  Pcg32 rng(seed ^ 0xC0CC0DE5u);
  sched.rounds.reserve(static_cast<size_t>(rounds));
  for (int i = 0; i < rounds; ++i) {
    ChaosEvent ev;
    switch (rng.next_below(8)) {
      case 0:
      case 1:
        ev.kind = ChaosFault::kNone;
        break;
      case 2:
      case 3:
      case 4:
        ev.kind = ChaosFault::kFailStop;
        break;
      case 5:
        ev.kind = ChaosFault::kDoubleFailStop;
        break;
      default:
        ev.kind = ChaosFault::kPowerLoss;
        ev.param = 1 + static_cast<int64_t>(rng.next_below(60));
        break;
    }
    ev.disk = static_cast<int>(rng.next_below(static_cast<uint32_t>(disks)));
    ev.disk2 = static_cast<int>(
        rng.next_below(static_cast<uint32_t>(disks - 1)));
    if (ev.disk2 >= ev.disk) ++ev.disk2;
    sched.rounds.push_back(ev);
  }
  return sched;
}

// Pool schedule family: faults struck on ONE shard of a sharded
// StoragePool while a throttled restripe is mid-migration and writers
// hit every shard. Restricted to the families that interact with the
// restripe watermark protocol — fail-stop (degraded chunk copies, spare
// promotion racing the migrator) and power loss (the restripe worker
// stands down and must resume after recovery) — plus quiet rounds so a
// fault-free capacity add under load is exercised from the same seeds.
// Field semantics differ from the array schedules: `disk` targets a
// disk *within* the victim shard, and `disk2` is a raw victim-shard
// selector the campaign reduces modulo the live shard count.
inline ChaosSchedule make_pool_chaos_schedule(uint64_t seed, int rounds,
                                              int disks_per_shard) {
  ChaosSchedule sched;
  sched.seed = seed;
  Pcg32 rng(seed ^ 0xF001C0DEu);
  sched.rounds.reserve(static_cast<size_t>(rounds));
  for (int i = 0; i < rounds; ++i) {
    ChaosEvent ev;
    switch (rng.next_below(6)) {
      case 0:
        ev.kind = ChaosFault::kNone;
        break;
      case 1:
      case 2:
      case 3:
        ev.kind = ChaosFault::kFailStop;
        break;
      default:
        ev.kind = ChaosFault::kPowerLoss;
        ev.param = 1 + static_cast<int64_t>(rng.next_below(60));
        break;
    }
    ev.disk = static_cast<int>(
        rng.next_below(static_cast<uint32_t>(disks_per_shard)));
    ev.disk2 = static_cast<int>(rng.next_below(4096));  // victim selector
    sched.rounds.push_back(ev);
  }
  return sched;
}

}  // namespace dcode::raid

// Differential tests for the runtime-dispatched SIMD kernel backends:
// every backend this binary+CPU supports must match the scalar ground
// truth bit-for-bit — across dst/src misalignments 0..7, lengths that are
// not vector multiples, every GF(256) constant, and both accumulate
// modes. The suite runs under the ASan/UBSan/TSan presets like every
// other test, and CI re-runs it with DCODE_ISA pinned to each fallback
// so the narrow backends stay exercised on wide-vector hardware.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "gf/gf.h"
#include "util/aligned_buffer.h"
#include "util/rng.h"
#include "xorops/isa.h"
#include "xorops/xor_backend.h"
#include "xorops/xor_region.h"

namespace dcode::xorops {
namespace {

// Lengths straddling the vector main loops (16/32/64-byte blocks), the
// word loop, and the byte tail.
constexpr size_t kLengths[] = {0,  1,  7,   8,   15,  16,  17,  31,  32,
                               33, 63, 64,  65,  95,  96,  100, 127, 128,
                               129, 192, 255, 256, 257, 1000, 4097};

std::string isa_list_names() {
  std::string s;
  for (Isa isa : supported_isas()) {
    if (!s.empty()) s += ",";
    s += isa_name(isa);
  }
  return s;
}

TEST(IsaModule, ScalarAlwaysSupported) {
  EXPECT_TRUE(isa_compiled(Isa::kScalar));
  EXPECT_TRUE(isa_supported(Isa::kScalar));
  auto isas = supported_isas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.front(), Isa::kScalar);
  for (size_t i = 1; i < isas.size(); ++i) {
    EXPECT_LT(isas[i - 1], isas[i]) << "supported_isas must be ascending";
  }
  SCOPED_TRACE("supported: " + isa_list_names());
}

TEST(IsaModule, ActiveIsaHonorsEnvOverride) {
  // The override is resolved once per process; this test only asserts
  // consistency with whatever environment the test was launched under.
  Isa active = active_isa();
  EXPECT_TRUE(isa_supported(active));
  const char* env = std::getenv("DCODE_ISA");
  if (env != nullptr && env[0] != '\0') {
    for (Isa isa : supported_isas()) {
      if (std::string(env) == isa_name(isa)) {
        EXPECT_EQ(active, isa) << "DCODE_ISA=" << env << " was not honored";
      }
    }
  }
}

TEST(IsaModule, UnsupportedBackendThrows) {
  for (Isa isa : {Isa::kSse2, Isa::kAvx2, Isa::kAvx512}) {
    if (isa_supported(isa)) continue;
    EXPECT_THROW(detail::xor_kernels(isa), std::logic_error);
    uint8_t b = 0;
    EXPECT_THROW(gf::gf8().mul_region(&b, &b, 2, 1, false, isa),
                 std::logic_error);
  }
}

// One fixture instantiation per (backend, dst offset, src offset).
class BackendEquivalence
    : public ::testing::TestWithParam<std::tuple<int, size_t, size_t>> {
 protected:
  Isa isa() const { return supported_isas()[std::get<0>(GetParam())]; }
  size_t dst_off() const { return std::get<1>(GetParam()); }
  size_t src_off() const { return std::get<2>(GetParam()); }
};

// supported_isas() is indexed lazily because the set depends on the
// machine; 4 slots covers scalar..avx512, excess indices are skipped.
INSTANTIATE_TEST_SUITE_P(Backends, BackendEquivalence,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Range<size_t>(0, 8),
                                            ::testing::Range<size_t>(0, 8)));

#define SKIP_IF_NO_BACKEND()                                               \
  if (static_cast<size_t>(std::get<0>(GetParam())) >=                      \
      supported_isas().size()) {                                           \
    GTEST_SKIP() << "fewer than " << std::get<0>(GetParam()) + 1           \
                 << " backends on this machine";                           \
  }

TEST_P(BackendEquivalence, XorKernelsMatchScalar) {
  SKIP_IF_NO_BACKEND();
  const auto& k = detail::xor_kernels(isa());
  const auto& ref = detail::scalar_xor_kernels();
  Pcg32 rng(dst_off() * 8 + src_off() + 1);

  for (size_t len : kLengths) {
    const size_t span = len + 8;
    AlignedBuffer dst_mem(span), ref_mem(span);
    std::vector<AlignedBuffer> src_mem;
    std::vector<const uint8_t*> srcs;
    for (int s = 0; s < 5; ++s) {
      src_mem.emplace_back(span);
      rng.fill_bytes(src_mem.back().data(), span);
      srcs.push_back(src_mem.back().data() + src_off());
    }
    rng.fill_bytes(dst_mem.data(), span);
    std::memcpy(ref_mem.data(), dst_mem.data(), span);
    uint8_t* dst = dst_mem.data() + dst_off();
    uint8_t* ref_dst = ref_mem.data() + dst_off();

    auto expect_equal = [&](const char* kernel) {
      ASSERT_EQ(0, std::memcmp(dst, ref_dst, len))
          << kernel << " isa=" << isa_name(isa()) << " len=" << len
          << " dst_off=" << dst_off() << " src_off=" << src_off();
    };

    k.xor_into(dst, srcs[0], len);
    ref.xor_into(ref_dst, srcs[0], len);
    expect_equal("xor_into");

    k.xor_assign(dst, srcs[0], srcs[1], len);
    ref.xor_assign(ref_dst, srcs[0], srcs[1], len);
    expect_equal("xor_assign");

    k.xor2_into(dst, srcs[0], srcs[1], len);
    ref.xor2_into(ref_dst, srcs[0], srcs[1], len);
    expect_equal("xor2_into");

    k.xor3_into(dst, srcs[0], srcs[1], srcs[2], len);
    ref.xor3_into(ref_dst, srcs[0], srcs[1], srcs[2], len);
    expect_equal("xor3_into");

    k.xor4_into(dst, srcs[0], srcs[1], srcs[2], srcs[3], len);
    ref.xor4_into(ref_dst, srcs[0], srcs[1], srcs[2], srcs[3], len);
    expect_equal("xor4_into");

    k.xor5_into(dst, srcs[0], srcs[1], srcs[2], srcs[3], srcs[4], len);
    ref.xor5_into(ref_dst, srcs[0], srcs[1], srcs[2], srcs[3], srcs[4], len);
    expect_equal("xor5_into");
  }
}

TEST_P(BackendEquivalence, MulRegion8MatchesScalarForEveryConstant) {
  SKIP_IF_NO_BACKEND();
  const gf::GaloisField& f = gf::gf8();
  Pcg32 rng(dst_off() * 8 + src_off() + 77);

  // All 256 constants at one bulk length, the full length sweep at a few
  // representative constants — exhaustive × exhaustive would dominate the
  // suite's runtime for no extra coverage.
  const size_t kBulkLen = 257;
  const size_t span = 4097 + 8;
  AlignedBuffer src_mem(span), dst_mem(span), ref_mem(span), base_mem(span);
  rng.fill_bytes(src_mem.data(), span);
  rng.fill_bytes(base_mem.data(), span);
  const uint8_t* src = src_mem.data() + src_off();
  uint8_t* dst = dst_mem.data() + dst_off();
  uint8_t* ref_dst = ref_mem.data() + dst_off();

  auto check = [&](uint32_t c, size_t len, bool accumulate) {
    std::memcpy(dst_mem.data(), base_mem.data(), span);
    std::memcpy(ref_mem.data(), base_mem.data(), span);
    f.mul_region(dst, src, c, len, accumulate, isa());
    f.mul_region(ref_dst, src, c, len, accumulate, Isa::kScalar);
    ASSERT_EQ(0, std::memcmp(dst, ref_dst, len))
        << "mul_region8 isa=" << isa_name(isa()) << " c=" << c
        << " len=" << len << " accumulate=" << accumulate
        << " dst_off=" << dst_off() << " src_off=" << src_off();
    // And the scalar reference itself must agree with single-element mul.
    for (size_t i = 0; i < len; ++i) {
      uint8_t want = static_cast<uint8_t>(f.mul(src[i], c));
      if (accumulate) want ^= base_mem[i + dst_off()];
      ASSERT_EQ(ref_dst[i], want) << "scalar mul_region8 c=" << c;
    }
  };

  for (uint32_t c = 0; c < 256; ++c) {
    check(c, kBulkLen, false);
    check(c, kBulkLen, true);
  }
  for (uint32_t c : {2u, 29u, 255u}) {
    for (size_t len : kLengths) {
      check(c, len, false);
      check(c, len, true);
    }
  }
}

TEST(XorManyDispatch, MatchesNaiveAcrossGroupBoundaries) {
  // Crosses the 5-grouping plus each 4/3/2/1 remainder, via the public
  // dispatched entry point.
  Pcg32 rng(123);
  const size_t len = 333;
  for (int nsrc = 1; nsrc <= 17; ++nsrc) {
    std::vector<std::vector<uint8_t>> srcs;
    std::vector<const uint8_t*> ptrs;
    for (int i = 0; i < nsrc; ++i) {
      srcs.emplace_back(len);
      rng.fill_bytes(srcs.back().data(), len);
      ptrs.push_back(srcs.back().data());
    }
    std::vector<uint8_t> expect(len, 0);
    for (const auto& s : srcs) {
      for (size_t i = 0; i < len; ++i) expect[i] ^= s[i];
    }
    std::vector<uint8_t> dst(len, 0xAA);
    xor_many(dst.data(), ptrs, len);
    ASSERT_EQ(dst, expect) << "nsrc=" << nsrc;
  }
}

TEST(MulRegion16, TablePathMatchesPerElementMul) {
  // The w=16 table fallback kicks in above its threshold; verify both
  // sides of the boundary against element-wise mul(), both modes.
  const gf::GaloisField& f = gf::gf16();
  Pcg32 rng(321);
  for (size_t len : {64u, 512u, 1024u, 4096u}) {
    std::vector<uint8_t> src(len), base(len);
    rng.fill_bytes(src.data(), len);
    rng.fill_bytes(base.data(), len);
    for (uint32_t c : {0u, 1u, 2u, 3u, 0x1234u, 0xFFFFu}) {
      for (bool accumulate : {false, true}) {
        std::vector<uint8_t> dst = base;
        f.mul_region(dst.data(), src.data(), c, len, accumulate);
        for (size_t i = 0; i < len; i += 2) {
          uint32_t e = src[i] | (static_cast<uint32_t>(src[i + 1]) << 8);
          uint32_t want = f.mul(e, c);
          if (accumulate) {
            want ^= base[i] | (static_cast<uint32_t>(base[i + 1]) << 8);
          }
          ASSERT_EQ(dst[i] | (static_cast<uint32_t>(dst[i + 1]) << 8), want)
              << "len=" << len << " c=" << c << " acc=" << accumulate
              << " i=" << i;
        }
      }
    }
  }
}

}  // namespace
}  // namespace dcode::xorops

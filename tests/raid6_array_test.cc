// End-to-end tests for the byte-level Raid6Array: round-trips, degraded
// operation, rebuild, and scrubbing — across all codes.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "codes/registry.h"
#include "raid/raid6_array.h"
#include "util/rng.h"

namespace dcode::raid {
namespace {

constexpr size_t kElem = 512;
constexpr int64_t kStripes = 6;

std::vector<uint8_t> random_blob(Pcg32& rng, size_t n) {
  std::vector<uint8_t> v(n);
  rng.fill_bytes(v.data(), n);
  return v;
}

class ArrayAllCodes : public ::testing::TestWithParam<std::string> {
 protected:
  Raid6Array make(unsigned threads = 1) {
    return Raid6Array(codes::make_layout(GetParam(), 7), kElem, kStripes,
                      threads);
  }
};

INSTANTIATE_TEST_SUITE_P(Codes, ArrayAllCodes,
                         ::testing::Values("dcode", "xcode", "rdp", "evenodd",
                                           "hcode", "hdp", "pcode", "liberation"),
                         [](const auto& info) { return info.param; });

TEST_P(ArrayAllCodes, WriteReadRoundTripWholeArray) {
  Raid6Array array = make();
  Pcg32 rng(1);
  auto blob = random_blob(rng, static_cast<size_t>(array.capacity()));
  array.write(0, blob);
  std::vector<uint8_t> out(blob.size());
  array.read(0, out);
  EXPECT_EQ(out, blob);
  EXPECT_EQ(array.scrub(), 0) << "parities must be consistent after writes";
}

TEST_P(ArrayAllCodes, UnalignedOffsetsAndSizes) {
  Raid6Array array = make();
  Pcg32 rng(2);
  auto base = random_blob(rng, static_cast<size_t>(array.capacity()));
  array.write(0, base);

  // Overwrite odd ranges, re-read everything and compare to a shadow copy.
  for (int trial = 0; trial < 25; ++trial) {
    int64_t off = static_cast<int64_t>(
        rng.next_u64() % static_cast<uint64_t>(array.capacity() - 1));
    size_t len = 1 + rng.next_below(static_cast<uint32_t>(
                          std::min<int64_t>(3000, array.capacity() - off)));
    auto patch = random_blob(rng, len);
    array.write(off, patch);
    std::copy(patch.begin(), patch.end(),
              base.begin() + static_cast<ptrdiff_t>(off));
  }
  std::vector<uint8_t> out(base.size());
  array.read(0, out);
  EXPECT_EQ(out, base);
  EXPECT_EQ(array.scrub(), 0);
}

TEST_P(ArrayAllCodes, DegradedReadAfterOneFailure) {
  Raid6Array array = make();
  Pcg32 rng(3);
  auto blob = random_blob(rng, static_cast<size_t>(array.capacity()));
  array.write(0, blob);

  for (int f = 0; f < array.layout().cols(); ++f) {
    Raid6Array a2 = make();
    a2.write(0, blob);
    a2.fail_disk(f);
    std::vector<uint8_t> out(blob.size());
    a2.read(0, out);
    EXPECT_EQ(out, blob) << "failed disk " << f;
  }
}

TEST_P(ArrayAllCodes, DegradedReadAfterTwoFailures) {
  Pcg32 rng(4);
  // Disk indices valid for every code's geometry (HDP p=7 has 6 disks).
  for (auto [f1, f2] : std::vector<std::pair<int, int>>{{0, 1}, {2, 5}, {1, 4}}) {
    Raid6Array array = make();
    auto blob = random_blob(rng, static_cast<size_t>(array.capacity()));
    array.write(0, blob);
    array.fail_disk(f1);
    array.fail_disk(f2);
    std::vector<uint8_t> out(blob.size());
    array.read(0, out);
    EXPECT_EQ(out, blob) << f1 << "," << f2;
  }
}

TEST_P(ArrayAllCodes, RebuildSingleDiskRestoresEverything) {
  Raid6Array array = make(/*threads=*/4);
  Pcg32 rng(5);
  auto blob = random_blob(rng, static_cast<size_t>(array.capacity()));
  array.write(0, blob);

  array.fail_disk(3);
  array.replace_disk(3);
  array.rebuild();
  EXPECT_EQ(array.failed_disk_count(), 0);
  EXPECT_EQ(array.scrub(), 0) << "rebuild must restore parity consistency";
  std::vector<uint8_t> out(blob.size());
  array.read(0, out);
  EXPECT_EQ(out, blob);
}

TEST_P(ArrayAllCodes, RebuildTwoDisksRestoresEverything) {
  Raid6Array array = make(/*threads=*/4);
  Pcg32 rng(6);
  auto blob = random_blob(rng, static_cast<size_t>(array.capacity()));
  array.write(0, blob);

  array.fail_disk(1);
  array.fail_disk(4);
  array.replace_disk(1);
  array.replace_disk(4);
  array.rebuild();
  EXPECT_EQ(array.scrub(), 0);
  std::vector<uint8_t> out(blob.size());
  array.read(0, out);
  EXPECT_EQ(out, blob);
}

TEST_P(ArrayAllCodes, DegradedWriteThenRebuild) {
  Raid6Array array = make();
  Pcg32 rng(7);
  auto blob = random_blob(rng, static_cast<size_t>(array.capacity()));
  array.write(0, blob);

  array.fail_disk(2);
  // Write while degraded (stripe-rewrite policy).
  auto patch = random_blob(rng, 5000);
  array.write(1234, patch);
  std::copy(patch.begin(), patch.end(), blob.begin() + 1234);

  std::vector<uint8_t> out(blob.size());
  array.read(0, out);
  EXPECT_EQ(out, blob) << "degraded read after degraded write";

  array.replace_disk(2);
  array.rebuild();
  EXPECT_EQ(array.scrub(), 0);
  std::vector<uint8_t> out2(blob.size());
  array.read(0, out2);
  EXPECT_EQ(out2, blob);
}

TEST_P(ArrayAllCodes, ScrubDetectsSilentCorruption) {
  Raid6Array array = make();
  Pcg32 rng(8);
  auto blob = random_blob(rng, static_cast<size_t>(array.capacity()));
  array.write(0, blob);
  ASSERT_EQ(array.scrub(), 0);

  array.disk(2).corrupt(kElem / 2, 16, rng);
  EXPECT_EQ(array.scrub(), 1) << "corruption confined to one stripe";
}

TEST(Raid6Array, StatsAccounting) {
  Raid6Array array(codes::make_layout("dcode", 7), kElem, 2, 1);
  array.reset_stats();
  std::vector<uint8_t> buf(kElem);
  array.read(0, buf);
  EXPECT_EQ(array.disk(0).reads(), 1);
  for (int d = 1; d < 7; ++d) EXPECT_EQ(array.disk(d).reads(), 0);

  Pcg32 rng(9);
  rng.fill_bytes(buf.data(), buf.size());
  array.write(0, buf);
  // One data write plus exactly two parity updates (optimal update
  // complexity): disk 0 gets the data write, two other disks get
  // read+write of their parity.
  int64_t total_writes = 0;
  for (int d = 0; d < 7; ++d) total_writes += array.disk(d).writes();
  EXPECT_EQ(total_writes, 3);
}

TEST(Raid6Array, CapacityAndBoundsChecks) {
  Raid6Array array(codes::make_layout("dcode", 5), 64, 2, 1);
  EXPECT_EQ(array.capacity(), 2 * 15 * 64);
  std::vector<uint8_t> buf(65);
  EXPECT_THROW(array.read(array.capacity() - 64, buf), std::logic_error);
  EXPECT_THROW(array.write(-1, buf), std::logic_error);
  EXPECT_THROW(array.fail_disk(5), std::logic_error);
  EXPECT_THROW(array.replace_disk(0), std::logic_error);  // not failed
}

TEST(Raid6Array, ThreeFailuresAreFatal) {
  Raid6Array array(codes::make_layout("dcode", 7), 64, 2, 1);
  Pcg32 rng(10);
  std::vector<uint8_t> blob(static_cast<size_t>(array.capacity()));
  rng.fill_bytes(blob.data(), blob.size());
  array.write(0, blob);
  array.fail_disk(0);
  array.fail_disk(1);
  array.fail_disk(2);
  std::vector<uint8_t> out(64);
  EXPECT_THROW(array.read(0, out), std::logic_error);
}

TEST(Raid6Array, ParallelRebuildMatchesSerial) {
  Pcg32 rng(11);
  std::vector<uint8_t> blob;
  auto build = [&](unsigned threads) {
    Raid6Array a(codes::make_layout("xcode", 11), 256, 32, threads);
    if (blob.empty())
      blob = random_blob(rng, static_cast<size_t>(a.capacity()));
    a.write(0, blob);
    a.fail_disk(2);
    a.fail_disk(7);
    a.replace_disk(2);
    a.replace_disk(7);
    a.rebuild();
    std::vector<uint8_t> out(blob.size());
    a.read(0, out);
    return out;
  };
  auto serial = build(1);
  auto parallel = build(8);
  EXPECT_EQ(serial, blob);
  EXPECT_EQ(parallel, blob);
}

}  // namespace
}  // namespace dcode::raid

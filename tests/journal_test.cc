// Write-hole tests: demonstrate the hole (crash mid-write leaves stale
// parity without journaling), prove the intent journal closes it, and
// fuzz crash points across the whole write path.
#include <gtest/gtest.h>

#include <vector>

#include "codes/registry.h"
#include "raid/journal.h"
#include "raid/raid6_array.h"
#include "util/rng.h"

namespace dcode::raid {
namespace {

constexpr size_t kElem = 256;

std::vector<uint8_t> random_blob(Pcg32& rng, size_t n) {
  std::vector<uint8_t> v(n);
  rng.fill_bytes(v.data(), n);
  return v;
}

// ---------- the journal itself ----------

TEST(WriteIntentJournal, BeginCommitLifecycle) {
  WriteIntentJournal j(4);
  EXPECT_TRUE(j.empty());
  j.begin(10);
  j.begin(20);
  j.begin(10);  // idempotent
  EXPECT_EQ(j.open_stripes().size(), 2u);
  j.commit(10);
  EXPECT_EQ(j.open_stripes(), std::vector<int64_t>{20});
  j.commit(20);
  EXPECT_TRUE(j.empty());
}

TEST(WriteIntentJournal, FullJournalBackpressure) {
  WriteIntentJournal j(2);
  j.begin(1);
  j.begin(2);
  EXPECT_THROW(j.begin(3), std::logic_error);
  j.commit(1);
  EXPECT_NO_THROW(j.begin(3));
}

TEST(WriteIntentJournal, CommitWithoutBeginRejected) {
  WriteIntentJournal j(2);
  EXPECT_THROW(j.commit(7), std::logic_error);
}

// ---------- the write hole, demonstrated ----------

TEST(WriteHole, CrashMidWriteLeavesStaleParityWithoutJournal) {
  Raid6Array array(codes::make_layout("dcode", 7), kElem, 4, 1);
  Pcg32 rng(1);
  auto blob = random_blob(rng, static_cast<size_t>(array.capacity()));
  array.write(0, blob);

  // A single-element write = 1 data write + 2 parity writes. Crash after
  // the data write but before the parities.
  auto patch = random_blob(rng, kElem);
  array.inject_power_loss_after(1);
  EXPECT_THROW(array.write(0, patch), PowerLossError);
  EXPECT_TRUE(array.crashed());
  EXPECT_THROW(array.read(0, patch), PowerLossError) << "array is down";

  array.restart();
  EXPECT_EQ(array.scrub(), 1) << "exactly the torn stripe is inconsistent";
}

TEST(WriteHole, JournalRecoveryRestoresConsistency) {
  Raid6Array array(codes::make_layout("dcode", 7), kElem, 4, 1);
  array.enable_journal();
  Pcg32 rng(2);
  auto blob = random_blob(rng, static_cast<size_t>(array.capacity()));
  array.write(0, blob);
  ASSERT_TRUE(array.journal_open_stripes().empty())
      << "completed writes must leave no open intents";

  auto patch = random_blob(rng, kElem);
  array.inject_power_loss_after(2);  // journal record + data, no parity
  EXPECT_THROW(array.write(0, patch), PowerLossError);

  array.restart();
  EXPECT_EQ(array.journal_open_stripes().size(), 1u);
  EXPECT_EQ(array.journal_recover(), 1);
  EXPECT_TRUE(array.journal_open_stripes().empty());
  EXPECT_EQ(array.scrub(), 0) << "recovery must close the write hole";

  // The interrupted write is element-atomic: element 0 holds either the
  // old or the new bytes, everything else is untouched.
  std::vector<uint8_t> out(kElem);
  array.read(0, out);
  bool is_old = std::equal(out.begin(), out.end(), blob.begin());
  bool is_new = std::equal(out.begin(), out.end(), patch.begin());
  EXPECT_TRUE(is_old || is_new);
}

TEST(WriteHole, TornStripeSurvivesSubsequentDiskFailure) {
  // The whole point of closing the hole: after journal recovery, a disk
  // failure reconstructs correct data instead of garbage.
  Raid6Array array(codes::make_layout("dcode", 7), kElem, 4, 1);
  array.enable_journal();
  Pcg32 rng(3);
  auto blob = random_blob(rng, static_cast<size_t>(array.capacity()));
  array.write(0, blob);

  auto patch = random_blob(rng, 3 * kElem);
  array.inject_power_loss_after(5);
  try {
    array.write(10 * kElem, patch);
    FAIL() << "expected power loss";
  } catch (const PowerLossError&) {
  }
  array.restart();
  ASSERT_GE(array.journal_recover(), 1);

  // Shadow = whatever the array now believes (recovery made it
  // self-consistent, element-atomically).
  std::vector<uint8_t> shadow(blob.size());
  array.read(0, shadow);

  array.fail_disk(2);
  std::vector<uint8_t> degraded(blob.size());
  array.read(0, degraded);
  EXPECT_EQ(degraded, shadow)
      << "degraded reconstruction must agree with the recovered state";
}

TEST(WriteHole, CrashPointFuzz) {
  // Sweep the crash point across an entire multi-stripe write: at every
  // point, journal recovery must restore full parity consistency.
  Pcg32 rng(4);
  for (int64_t crash_after = 0; crash_after < 60; crash_after += 3) {
    Raid6Array array(codes::make_layout("xcode", 5), kElem, 3, 1);
    array.enable_journal();
    auto blob = random_blob(rng, static_cast<size_t>(array.capacity()));
    array.write(0, blob);

    auto patch = random_blob(rng, 20 * kElem);  // spans 2 stripes
    array.inject_power_loss_after(crash_after);
    bool crashed = false;
    try {
      array.write(5 * kElem, patch);
    } catch (const PowerLossError&) {
      crashed = true;
    }
    array.restart();
    array.journal_recover();
    EXPECT_EQ(array.scrub(), 0) << "crash_after=" << crash_after;
    if (!crashed) {
      // Write completed before the budget ran out: content must be exact.
      std::vector<uint8_t> out(patch.size());
      array.read(5 * kElem, out);
      EXPECT_EQ(out, patch);
    }
  }
}

TEST(WriteHole, RecoverRequiresJournalButToleratesDegraded) {
  Raid6Array array(codes::make_layout("dcode", 5), kElem, 2, 1);
  EXPECT_THROW((void)array.journal_recover(), std::logic_error);
  array.enable_journal();
  EXPECT_THROW(array.enable_journal(), std::logic_error);
  // A crash can race a disk failure, so recovery must run on a degraded
  // array (the re-encode decodes lost columns and skips dead devices).
  array.fail_disk(0);
  EXPECT_EQ(array.journal_recover(), 0);
}

TEST(WriteHole, JournaledDegradedWritesAlsoCovered) {
  Raid6Array array(codes::make_layout("rdp", 7), kElem, 3, 1);
  array.enable_journal();
  Pcg32 rng(5);
  auto blob = random_blob(rng, static_cast<size_t>(array.capacity()));
  array.write(0, blob);

  array.fail_disk(1);
  auto patch = random_blob(rng, 4 * kElem);
  array.inject_power_loss_after(10);  // stripe-rewrite is many writes
  try {
    array.write(0, patch);
  } catch (const PowerLossError&) {
  }
  array.restart();
  // Repair the failed disk first, then close the hole.
  array.replace_disk(1);
  // Rebuild of a torn stripe may produce stale-but-consistent-with-parity
  // content; journal_recover then re-encodes it. Order: rebuild (needs
  // all disks present), then recover.
  array.rebuild();
  array.journal_recover();
  EXPECT_EQ(array.scrub(), 0);
}

}  // namespace
}  // namespace dcode::raid

// Tests for the simulation layer: workload generation, I/O statistics,
// the disk service-time model, and the experiment drivers (at reduced
// operation counts — the full-size sweeps live in bench/).
#include <gtest/gtest.h>

#include <cmath>

#include "codes/registry.h"
#include "sim/disk_model.h"
#include "sim/experiments.h"
#include "sim/io_stats.h"
#include "sim/workload.h"

namespace dcode::sim {
namespace {

// ---------- workload ----------

TEST(Workload, Deterministic) {
  WorkloadParams p;
  p.start_space = 100;
  auto a = generate_workload(WorkloadKind::kMixed, p);
  auto b = generate_workload(WorkloadKind::kMixed, p);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].is_write, b[i].is_write);
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_EQ(a[i].len, b[i].len);
    EXPECT_EQ(a[i].times, b[i].times);
  }
}

TEST(Workload, RangesRespected) {
  WorkloadParams p;
  p.start_space = 35;
  p.operations = 3000;
  for (auto kind : {WorkloadKind::kReadOnly, WorkloadKind::kReadIntensive,
                    WorkloadKind::kMixed}) {
    for (const Op& op : generate_workload(kind, p)) {
      EXPECT_GE(op.start, 0);
      EXPECT_LT(op.start, 35);
      EXPECT_GE(op.len, 1);
      EXPECT_LE(op.len, 20);
      EXPECT_GE(op.times, 1);
      EXPECT_LE(op.times, 1000);
    }
  }
}

TEST(Workload, MixRatiosMatchSpecification) {
  WorkloadParams p;
  p.operations = 20000;
  p.start_space = 10;
  auto frac_writes = [&](WorkloadKind kind) {
    auto ops = generate_workload(kind, p);
    int w = 0;
    for (const Op& op : ops) w += op.is_write;
    return static_cast<double>(w) / static_cast<double>(ops.size());
  };
  EXPECT_EQ(frac_writes(WorkloadKind::kReadOnly), 0.0);
  EXPECT_NEAR(frac_writes(WorkloadKind::kReadIntensive), 0.3, 0.02);
  EXPECT_NEAR(frac_writes(WorkloadKind::kMixed), 0.5, 0.02);
}

TEST(Workload, SkewConcentratesStarts) {
  WorkloadParams p;
  p.operations = 5000;
  p.start_space = 1000;
  auto mean_start = [&](double skew) {
    p.skew = skew;
    double sum = 0;
    for (const Op& op : generate_workload(WorkloadKind::kReadOnly, p)) {
      EXPECT_GE(op.start, 0);
      EXPECT_LT(op.start, 1000);
      sum += static_cast<double>(op.start);
    }
    return sum / p.operations;
  };
  double uniform = mean_start(1.0);
  double skewed = mean_start(4.0);
  EXPECT_NEAR(uniform, 500.0, 25.0);
  // E[space * u^4] = space / 5.
  EXPECT_NEAR(skewed, 200.0, 25.0);
  WorkloadParams bad;
  bad.skew = 0.5;
  EXPECT_THROW(generate_workload(WorkloadKind::kReadOnly, bad),
               std::logic_error);
}

TEST(Workload, InvalidParamsRejected) {
  WorkloadParams p;
  p.operations = 0;
  EXPECT_THROW(generate_workload(WorkloadKind::kMixed, p), std::logic_error);
  p = WorkloadParams{};
  p.min_len = 5;
  p.max_len = 2;
  EXPECT_THROW(generate_workload(WorkloadKind::kMixed, p), std::logic_error);
  p = WorkloadParams{};
  p.start_space = 0;
  EXPECT_THROW(generate_workload(WorkloadKind::kMixed, p), std::logic_error);
}

TEST(Workload, NamesAreStable) {
  EXPECT_STREQ(workload_name(WorkloadKind::kReadOnly), "read-only");
  EXPECT_STREQ(workload_name(WorkloadKind::kReadIntensive),
               "read-intensive (7:3)");
  EXPECT_STREQ(workload_name(WorkloadKind::kMixed),
               "read-write mixed (1:1)");
}

// ---------- io stats ----------

TEST(IoStats, LoadFactorAndCost) {
  IoStats s(4);
  s.add(0, 10);
  s.add(1, 20);
  s.add(2, 10);
  s.add(3, 40);
  EXPECT_EQ(s.total(), 80);
  EXPECT_EQ(s.max_load(), 40);
  EXPECT_EQ(s.min_load(), 10);
  EXPECT_DOUBLE_EQ(s.load_balancing_factor(), 4.0);
}

TEST(IoStats, IdleDiskMeansInfiniteLF) {
  IoStats s(3);
  s.add(0, 5);
  s.add(1, 5);
  EXPECT_TRUE(std::isinf(s.load_balancing_factor()));
}

TEST(IoStats, AccumulatePlanWithTimes) {
  IoStats s(3);
  raid::IoPlan plan;
  plan.accesses.push_back({0, codes::make_element(0, 0), 0, false});
  plan.accesses.push_back({0, codes::make_element(0, 1), 1, true});
  s.accumulate(plan, 7);
  EXPECT_EQ(s.accesses(0), 7);
  EXPECT_EQ(s.accesses(1), 7);
  EXPECT_EQ(s.accesses(2), 0);
  EXPECT_EQ(s.total(), 14);
}

// ---------- disk model ----------

TEST(DiskModel, SingleAccessCostsPositioningPlusTransfer) {
  DiskModelParams p;
  raid::IoPlan plan;
  plan.accesses.push_back({0, codes::make_element(0, 0), 0, false});
  double expect = p.positioning_ms() +
                  static_cast<double>(p.element_bytes) /
                      (p.bandwidth_mb_s * 1024 * 1024) * 1000;
  EXPECT_NEAR(plan_service_time_ms(plan, p), expect, 1e-9);
}

TEST(DiskModel, ParallelDisksDoNotAddTime) {
  DiskModelParams p;
  raid::IoPlan one, four;
  one.accesses.push_back({0, codes::make_element(0, 0), 0, false});
  for (int d = 0; d < 4; ++d)
    four.accesses.push_back({0, codes::make_element(0, d), d, false});
  EXPECT_DOUBLE_EQ(plan_service_time_ms(one, p),
                   plan_service_time_ms(four, p));
}

TEST(DiskModel, AdjacentRowsMergeIntoOneSeek) {
  DiskModelParams p;
  raid::IoPlan merged, scattered;
  // Rows 0,1,2 on one disk: one positioning.
  for (int r = 0; r < 3; ++r)
    merged.accesses.push_back({0, codes::make_element(r, 0), 0, false});
  // Rows 0,2,4: three positionings.
  for (int r = 0; r < 6; r += 2)
    scattered.accesses.push_back({0, codes::make_element(r, 0), 0, false});
  EXPECT_LT(plan_service_time_ms(merged, p),
            plan_service_time_ms(scattered, p));
  double transfer = 3.0 * static_cast<double>(p.element_bytes) /
                    (p.bandwidth_mb_s * 1024 * 1024) * 1000;
  EXPECT_NEAR(plan_service_time_ms(merged, p), p.positioning_ms() + transfer,
              1e-9);
}

TEST(DiskModel, DuplicateAccessesCountOnce) {
  DiskModelParams p;
  raid::IoPlan a, b;
  a.accesses.push_back({0, codes::make_element(0, 0), 0, false});
  b.accesses.push_back({0, codes::make_element(0, 0), 0, false});
  b.accesses.push_back({0, codes::make_element(0, 0), 0, false});
  EXPECT_DOUBLE_EQ(plan_service_time_ms(a, p), plan_service_time_ms(b, p));
}

TEST(DiskModel, EmptyPlanIsFree) {
  raid::IoPlan plan;
  EXPECT_DOUBLE_EQ(plan_service_time_ms(plan, DiskModelParams{}), 0.0);
}

// ---------- experiment drivers (small-scale shape checks) ----------

TEST(Experiments, WellBalancedCodesBeatHorizontalOnMixedWorkload) {
  // Figure 4(c) shape at p=7, 400 ops: RDP and H-Code unbalanced,
  // D-Code / X-Code / HDP close to 1.
  auto rdp = codes::make_layout("rdp", 7);
  auto hcode = codes::make_layout("hcode", 7);
  auto dcode = codes::make_layout("dcode", 7);
  auto xcode = codes::make_layout("xcode", 7);
  auto hdp = codes::make_layout("hdp", 7);

  auto lf = [&](const codes::CodeLayout& l) {
    return run_load_experiment(l, WorkloadKind::kMixed, 1, false, 400)
        .load_balancing_factor;
  };
  double lf_dcode = lf(*dcode), lf_xcode = lf(*xcode), lf_hdp = lf(*hdp);
  double lf_rdp = lf(*rdp), lf_hcode = lf(*hcode);

  EXPECT_LT(lf_dcode, 1.35);
  EXPECT_LT(lf_xcode, 1.35);
  EXPECT_LT(lf_hdp, 1.35);
  EXPECT_GT(lf_rdp, lf_dcode);
  EXPECT_GT(lf_hcode, lf_dcode);
}

TEST(Experiments, ReadOnlyWorkloadGivesHorizontalCodesInfiniteLF) {
  // Figure 4(a): RDP / H-Code parity disks serve no reads.
  auto rdp = codes::make_layout("rdp", 7);
  auto res = run_load_experiment(*rdp, WorkloadKind::kReadOnly, 2, false, 200);
  EXPECT_TRUE(std::isinf(res.load_balancing_factor));

  auto dcode = codes::make_layout("dcode", 7);
  auto res2 =
      run_load_experiment(*dcode, WorkloadKind::kReadOnly, 2, false, 200);
  EXPECT_LT(res2.load_balancing_factor, 1.5);
}

TEST(Experiments, DCodeCostsLessThanXCodeOnWriteHeavyWorkloads) {
  // Figure 5(b,c) shape.
  auto dcode = codes::make_layout("dcode", 13);
  auto xcode = codes::make_layout("xcode", 13);
  for (auto kind : {WorkloadKind::kReadIntensive, WorkloadKind::kMixed}) {
    auto d = run_load_experiment(*dcode, kind, 3, false, 400);
    auto x = run_load_experiment(*xcode, kind, 3, false, 400);
    EXPECT_LT(d.io_cost, x.io_cost) << workload_name(kind);
  }
}

TEST(Experiments, ReadOnlyCostIsCodeIndependentPerElement) {
  // Figure 5(a): reads incur no extra accesses, so cost equals the total
  // requested elements for every code with the same workload.
  WorkloadParams p;
  p.operations = 100;
  int64_t want = -1;
  for (const auto& name : {"dcode", "xcode"}) {
    auto l = codes::make_layout(name, 7);
    auto res = run_load_experiment(*l, WorkloadKind::kReadOnly, 4, false, 100);
    if (want < 0) {
      want = res.io_cost;
    } else {
      EXPECT_EQ(res.io_cost, want);  // same geometry => same addresses
    }
  }
}

TEST(Experiments, NormalReadSpeedOrderingMatchesFigure6) {
  DiskModelParams params;
  auto speed = [&](const char* name, int p) {
    auto l = codes::make_layout(name, p);
    return run_normal_read_experiment(*l, 5, params, 300).read_mb_s;
  };
  // D-Code and X-Code have identical data layouts -> near-identical speed.
  double d = speed("dcode", 11), x = speed("xcode", 11);
  EXPECT_NEAR(d / x, 1.0, 0.02);
  // Both beat RDP (parity disks idle on reads).
  EXPECT_GT(d, speed("rdp", 11));
}

TEST(Experiments, DegradedReadSpeedDCodeBeatsXCode) {
  DiskModelParams params;
  auto l1 = codes::make_layout("dcode", 11);
  auto l2 = codes::make_layout("xcode", 11);
  auto d = run_degraded_read_experiment(*l1, 6, params, 40);
  auto x = run_degraded_read_experiment(*l2, 6, params, 40);
  EXPECT_GT(d.read_mb_s, x.read_mb_s);
  // And both are slower than their own normal-mode speed.
  auto dn = run_normal_read_experiment(*l1, 6, params, 300);
  EXPECT_LT(d.read_mb_s, dn.read_mb_s);
}

TEST(Experiments, RotationDoesNotFixIntraStripeImbalance) {
  // The paper's §I claim, and our ablation: RDP stays unbalanced under
  // stripe-by-stripe rotation for skewed (high-T) single-stripe loads
  // ... but rotation cannot equalize *within* one stripe whose tuples
  // repeat T times. LF improves yet stays well above D-Code's.
  auto rdp = codes::make_layout("rdp", 7);
  auto dcode = codes::make_layout("dcode", 7);
  auto rot =
      run_load_experiment(*rdp, WorkloadKind::kMixed, 7, /*rotate=*/true, 400);
  auto dc =
      run_load_experiment(*dcode, WorkloadKind::kMixed, 7, false, 400);
  EXPECT_GT(rot.load_balancing_factor, dc.load_balancing_factor);
}

}  // namespace
}  // namespace dcode::sim

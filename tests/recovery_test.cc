// Tests for single-disk recovery planning: plans must be executable and
// correct, the optimized plan must never read more than the conventional
// one, and for D-Code / X-Code the saving must approach the ~25% of
// Xu et al. that the paper cites (§III-D).
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <tuple>

#include "codes/encoder.h"
#include "codes/registry.h"
#include "raid/recovery.h"
#include "util/rng.h"
#include "xorops/xor_region.h"

namespace dcode::raid {
namespace {

using codes::Element;
using codes::Equation;

using Param = std::tuple<std::string, int>;

class Recovery : public ::testing::TestWithParam<Param> {};
INSTANTIATE_TEST_SUITE_P(
    Codes, Recovery,
    ::testing::Combine(::testing::Values("dcode", "xcode", "rdp", "hcode",
                                         "hdp", "pcode", "liberation"),
                       ::testing::Values(5, 7, 11, 13)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

// Execute a recovery plan on real bytes and verify correctness.
void execute_and_check(const codes::CodeLayout& layout,
                       const RecoveryPlan& plan, int failed) {
  const size_t esize = 16;
  Pcg32 rng(55);
  codes::Stripe good(layout, esize);
  good.randomize_data(rng);
  codes::encode_stripe(good);

  std::set<Element> readable(plan.reads.begin(), plan.reads.end());
  for (const Element& e : plan.reads) {
    ASSERT_NE(e.col, failed) << "plan reads the failed disk";
  }
  std::set<Element> rebuilt;
  for (const auto& rec : plan.reconstructions) {
    const Equation& q = layout.equations()[static_cast<size_t>(rec.equation)];
    std::vector<uint8_t> buf(esize, 0);
    auto fold = [&](const Element& m) {
      if (m == rec.target) return;
      ASSERT_TRUE(readable.count(m))
          << "member (" << m.row << "," << m.col << ") not in the read set";
      xorops::xor_into(buf.data(), good.at(m), esize);
    };
    fold(q.parity);
    for (const Element& m : q.sources) fold(m);
    ASSERT_EQ(0, std::memcmp(buf.data(), good.at(rec.target), esize));
    rebuilt.insert(rec.target);
  }
  // Every element of the failed disk is rebuilt.
  EXPECT_EQ(rebuilt.size(), static_cast<size_t>(layout.rows()));
}

TEST_P(Recovery, ConventionalPlanIsExecutableAndCorrect) {
  auto layout = codes::make_layout(std::get<0>(GetParam()),
                                   std::get<1>(GetParam()));
  for (int f = 0; f < layout->cols(); ++f) {
    auto plan = plan_single_disk_recovery(*layout, f,
                                          RecoveryStrategy::kConventional);
    execute_and_check(*layout, plan, f);
  }
}

TEST_P(Recovery, OptimizedPlanIsExecutableAndCorrect) {
  auto layout = codes::make_layout(std::get<0>(GetParam()),
                                   std::get<1>(GetParam()));
  for (int f = 0; f < layout->cols(); ++f) {
    auto plan = plan_single_disk_recovery(*layout, f,
                                          RecoveryStrategy::kMinimalReads);
    execute_and_check(*layout, plan, f);
  }
}

TEST_P(Recovery, OptimizedNeverReadsMoreThanConventional) {
  auto layout = codes::make_layout(std::get<0>(GetParam()),
                                   std::get<1>(GetParam()));
  for (int f = 0; f < layout->cols(); ++f) {
    auto conv = plan_single_disk_recovery(*layout, f,
                                          RecoveryStrategy::kConventional);
    auto opt = plan_single_disk_recovery(*layout, f,
                                         RecoveryStrategy::kMinimalReads);
    EXPECT_LE(opt.reads.size(), conv.reads.size()) << "disk " << f;
  }
}

class RecoverySavings : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Primes, RecoverySavings,
                         ::testing::Values(7, 11, 13));

TEST_P(RecoverySavings, DCodeAndXCodeApproachTheCitedQuarter) {
  // Xu et al.: optimal single-failure recovery for X-Code reads ~25% less
  // than the conventional approach; D-Code inherits this (paper §III-D).
  // Demand at least 15% average saving (the asymptotic value is reached
  // slowly in p).
  const int p = GetParam();
  for (const char* name : {"dcode", "xcode"}) {
    auto layout = codes::make_layout(name, p);
    double total_conv = 0, total_opt = 0;
    for (int f = 0; f < layout->cols(); ++f) {
      total_conv += static_cast<double>(
          plan_single_disk_recovery(*layout, f,
                                    RecoveryStrategy::kConventional)
              .reads.size());
      total_opt += static_cast<double>(
          plan_single_disk_recovery(*layout, f,
                                    RecoveryStrategy::kMinimalReads)
              .reads.size());
    }
    double saving = 1.0 - total_opt / total_conv;
    EXPECT_GE(saving, 0.15) << name << " p=" << p;
    EXPECT_LE(saving, 0.35) << name << " p=" << p;
  }
}

TEST(RecoveryEdge, InvalidDiskRejected) {
  auto layout = codes::make_layout("dcode", 7);
  EXPECT_THROW((void)plan_single_disk_recovery(
                   *layout, -1, RecoveryStrategy::kConventional),
               std::logic_error);
  EXPECT_THROW((void)plan_single_disk_recovery(
                   *layout, 7, RecoveryStrategy::kConventional),
               std::logic_error);
}

TEST(RecoveryEdge, ParityOnlyDiskRecovery) {
  // RDP's diagonal-parity disk: recovery = recompute every diagonal.
  auto layout = codes::make_layout("rdp", 7);
  auto plan = plan_single_disk_recovery(*layout, 7,
                                        RecoveryStrategy::kConventional);
  execute_and_check(*layout, plan, 7);
}

}  // namespace
}  // namespace dcode::raid

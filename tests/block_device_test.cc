// The device layer: BlockDevice's NVI contract (bounds checks, op/byte
// accounting, default vectored paths), the MemDisk and FileDisk
// backends, the FaultInjectingDevice decorator, the factory env switch,
// and — the part that needs real files — a write → power loss →
// process-style restart → journal_recover round-trip where the second
// Raid6Array instance sees only what the first one's FileDisks persisted.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "codes/registry.h"
#include "raid/block_device.h"
#include "raid/fault_injection.h"
#include "raid/file_disk.h"
#include "raid/mem_disk.h"
#include "raid/raid6_array.h"
#include "util/rng.h"

namespace dcode::raid {
namespace {

std::vector<uint8_t> random_bytes(size_t n, uint64_t seed) {
  std::vector<uint8_t> buf(n);
  Pcg32 rng(seed);
  rng.fill_bytes(buf.data(), buf.size());
  return buf;
}

std::string temp_path(const std::string& stem) {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp != nullptr ? tmp : "/tmp") + "/" + stem + "-" +
         std::to_string(::getpid()) + ".img";
}

TEST(MemDiskTest, RoundTripAndOpAccounting) {
  MemDisk disk(3, 4096);
  EXPECT_EQ(disk.id(), 3);
  EXPECT_EQ(disk.size(), 4096u);
  EXPECT_EQ(disk.backend_name(), "mem");
  EXPECT_EQ(disk.capabilities() & kDevicePersistent, 0u);
  EXPECT_NE(disk.capabilities() & kDeviceDiscard, 0u);

  auto data = random_bytes(512, 1);
  ASSERT_TRUE(disk.write(128, data).ok());
  std::vector<uint8_t> out(512);
  IoResult r = disk.read(128, out);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.bytes, 512u);
  EXPECT_EQ(out, data);

  EXPECT_EQ(disk.read_ops(), 1);
  EXPECT_EQ(disk.write_ops(), 1);
  EXPECT_EQ(disk.bytes_read(), 512);
  EXPECT_EQ(disk.bytes_written(), 512);
  disk.reset_op_stats();
  EXPECT_EQ(disk.read_ops(), 0);
  EXPECT_EQ(disk.bytes_written(), 0);

  // A fresh device reads as zeros; discard re-zeroes a written range.
  ASSERT_TRUE(disk.discard(128, 512).ok());
  ASSERT_TRUE(disk.read(128, out).ok());
  EXPECT_EQ(out, std::vector<uint8_t>(512, 0));
}

TEST(MemDiskTest, VectoredTransferIsOneDeviceOp) {
  MemDisk disk(0, 1024);
  auto data = random_bytes(96, 2);
  ConstIoVec wv[3] = {{data.data(), 32}, {data.data() + 32, 32},
                      {data.data() + 64, 32}};
  ASSERT_TRUE(disk.writev(100, wv).ok());

  std::vector<uint8_t> a(48), b(48);
  IoVec rv[2] = {{a.data(), 48}, {b.data(), 48}};
  IoResult r = disk.readv(100, rv);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.bytes, 96u);
  EXPECT_TRUE(std::memcmp(a.data(), data.data(), 48) == 0);
  EXPECT_TRUE(std::memcmp(b.data(), data.data() + 48, 48) == 0);

  // However many segments, one op each — coalescing's denominator.
  EXPECT_EQ(disk.read_ops(), 1);
  EXPECT_EQ(disk.write_ops(), 1);
  EXPECT_EQ(disk.bytes_read(), 96);
  EXPECT_EQ(disk.bytes_written(), 96);
}

TEST(MemDiskTest, OutOfBoundsIsACallerBug) {
  MemDisk disk(0, 256);
  std::vector<uint8_t> buf(32);
  EXPECT_THROW(disk.read(240, buf), std::logic_error);
  EXPECT_THROW(disk.write(256, buf), std::logic_error);
  IoVec rv[1] = {{buf.data(), 32}};
  EXPECT_THROW(disk.readv(230, rv), std::logic_error);
  EXPECT_THROW(disk.discard(0, 257), std::logic_error);
}

// A backend that only implements the scalar hooks: the base class's
// default vectored paths must walk the segments correctly.
class ScalarOnlyDevice : public BlockDevice {
 public:
  explicit ScalarOnlyDevice(size_t size)
      : BlockDevice(0, size), storage_(size) {}
  std::string_view backend_name() const override { return "scalar-only"; }
  uint32_t capabilities() const override { return 0; }

 protected:
  IoResult do_read(uint64_t offset, std::span<uint8_t> out) override {
    std::memcpy(out.data(), storage_.data() + offset, out.size());
    return IoResult::success(out.size());
  }
  IoResult do_write(uint64_t offset, std::span<const uint8_t> in) override {
    std::memcpy(storage_.data() + offset, in.data(), in.size());
    return IoResult::success(in.size());
  }

 private:
  std::vector<uint8_t> storage_;
};

TEST(BlockDeviceTest, DefaultVectoredPathsWalkTheSegments) {
  ScalarOnlyDevice disk(512);
  auto data = random_bytes(120, 3);
  ConstIoVec wv[3] = {{data.data(), 40}, {data.data() + 40, 40},
                      {data.data() + 80, 40}};
  ASSERT_TRUE(disk.writev(8, wv).ok());
  std::vector<uint8_t> out(120);
  IoVec rv[4] = {{out.data(), 30}, {out.data() + 30, 30},
                 {out.data() + 60, 30}, {out.data() + 90, 30}};
  IoResult r = disk.readv(8, rv);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.bytes, 120u);
  EXPECT_EQ(out, data);
}

TEST(FileDiskTest, PersistsAcrossCloseAndReopen) {
  const std::string path = temp_path("dcode-bdtest-persist");
  auto data = random_bytes(1024, 4);
  {
    FileDisk disk(0, 4096, path);
    EXPECT_EQ(disk.backend_name(), "file");
    EXPECT_NE(disk.capabilities() & kDevicePersistent, 0u);
    EXPECT_NE(disk.capabilities() & kDeviceFlush, 0u);
    ASSERT_TRUE(disk.write(512, data).ok());
    ASSERT_TRUE(disk.flush().ok());
  }
  {
    FileDisk::Options opts;
    opts.reuse = true;
    opts.unlink_on_close = true;
    FileDisk disk(0, 4096, path, opts);
    EXPECT_EQ(disk.path(), path);
    std::vector<uint8_t> out(1024);
    ASSERT_TRUE(disk.read(512, out).ok());
    EXPECT_EQ(out, data);
    // Discard zero-fills on the file backend too.
    ASSERT_TRUE(disk.discard(512, 1024).ok());
    ASSERT_TRUE(disk.read(512, out).ok());
    EXPECT_EQ(out, std::vector<uint8_t>(1024, 0));
  }
  EXPECT_NE(::access(path.c_str(), F_OK), 0);  // unlink_on_close cleaned up
}

TEST(FileDiskTest, VectoredTransfersBeyondTheIovecCap) {
  // > 512 segments forces the preadv/pwritev chunking path.
  const size_t segments = 600, seg = 8;
  const std::string path = temp_path("dcode-bdtest-iovcap");
  FileDisk::Options opts;
  opts.unlink_on_close = true;
  FileDisk disk(0, segments * seg, path, opts);

  auto data = random_bytes(segments * seg, 5);
  std::vector<ConstIoVec> wv(segments);
  for (size_t i = 0; i < segments; ++i) wv[i] = {data.data() + i * seg, seg};
  IoResult w = disk.writev(0, wv);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.bytes, segments * seg);

  std::vector<uint8_t> out(segments * seg);
  std::vector<IoVec> rv(segments);
  for (size_t i = 0; i < segments; ++i) rv[i] = {out.data() + i * seg, seg};
  IoResult r = disk.readv(0, rv);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(disk.read_ops(), 1);
  EXPECT_EQ(disk.write_ops(), 1);
}

TEST(FaultInjectionTest, FailStopUntilReplaced) {
  FaultInjectingDevice disk(std::make_unique<MemDisk>(7, 1024));
  auto data = random_bytes(256, 6);
  ASSERT_TRUE(disk.write(0, data).ok());

  disk.fail();
  EXPECT_TRUE(disk.failed());
  std::vector<uint8_t> out(256);
  EXPECT_EQ(disk.read(0, out).status, IoStatus::kFailed);
  EXPECT_EQ(disk.write(0, data).status, IoStatus::kFailed);
  EXPECT_EQ(disk.flush().status, IoStatus::kFailed);

  disk.replace(std::make_unique<MemDisk>(7, 1024));
  EXPECT_FALSE(disk.failed());
  ASSERT_TRUE(disk.read(0, out).ok());
  EXPECT_EQ(out, std::vector<uint8_t>(256, 0));  // blank replacement
  EXPECT_THROW(disk.replace(std::make_unique<MemDisk>(7, 512)),
               std::logic_error);  // size mismatch
}

TEST(FaultInjectionTest, TransientErrorsDrainThenHeal) {
  FaultInjectingDevice disk(std::make_unique<MemDisk>(0, 1024));
  disk.inject_transient_errors(2);
  EXPECT_EQ(disk.pending_transient_errors(), 2);
  std::vector<uint8_t> out(16);
  EXPECT_EQ(disk.read(0, out).status, IoStatus::kTransient);
  EXPECT_EQ(disk.read(0, out).status, IoStatus::kTransient);
  EXPECT_TRUE(disk.read(0, out).ok());
  EXPECT_EQ(disk.pending_transient_errors(), 0);
}

TEST(FaultInjectionTest, LatencyAppliesOnFaultPathsToo) {
  // An erroring op still occupies the device for its service time: the
  // injected latency must be paid before the fault decision, not only on
  // the success path (the early-return ordering once skipped it).
  FaultInjectingDevice disk(std::make_unique<MemDisk>(0, 1024));
  constexpr int64_t kLatencyNs = 2'000'000;  // 2ms: far above timer noise
  disk.set_latency_ns(kLatencyNs);
  disk.inject_transient_errors(1);
  std::vector<uint8_t> out(16);

  auto timed = [&](IoStatus expect) {
    auto t0 = std::chrono::steady_clock::now();
    EXPECT_EQ(disk.read(0, out).status, expect);
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  EXPECT_GE(timed(IoStatus::kTransient), kLatencyNs);
  EXPECT_GE(timed(IoStatus::kOk), kLatencyNs);
  disk.fail();
  EXPECT_GE(timed(IoStatus::kFailed), kLatencyNs);
}

TEST(FaultInjectionTest, CorruptionIsSilent) {
  FaultInjectingDevice disk(std::make_unique<MemDisk>(0, 1024));
  auto data = random_bytes(64, 7);
  ASSERT_TRUE(disk.write(0, data).ok());
  Pcg32 rng(8);
  disk.corrupt(0, 64, rng);
  std::vector<uint8_t> out(64);
  ASSERT_TRUE(disk.read(0, out).ok());  // no error surfaces
  EXPECT_NE(out, data);                 // but the bytes changed
}

TEST(DeviceFactoryTest, EnvSelectsTheBackend) {
  const char* saved = std::getenv("DCODE_DISK_BACKEND");
  const std::string restore = saved != nullptr ? saved : "";

  ::unsetenv("DCODE_DISK_BACKEND");
  EXPECT_EQ(default_device_factory()(0, 1024)->backend_name(), "mem");
  ::setenv("DCODE_DISK_BACKEND", "mem", 1);
  EXPECT_EQ(default_device_factory()(0, 1024)->backend_name(), "mem");
  ::setenv("DCODE_DISK_BACKEND", "file", 1);
  EXPECT_EQ(default_device_factory()(1, 1024)->backend_name(), "file");

  if (saved != nullptr) {
    ::setenv("DCODE_DISK_BACKEND", restore.c_str(), 1);
  } else {
    ::unsetenv("DCODE_DISK_BACKEND");
  }
}

// Engine-level retry budget: a transient burst within the budget heals
// invisibly; a longer one escalates to fail-stop.
TEST(EngineRetryTest, TransientBurstHealsWithinBudgetElseEscalates) {
  static constexpr size_t kElem = 64;
  auto make = [](obs::Registry& reg) {
    return std::make_unique<Raid6Array>(codes::make_layout("dcode", 5), kElem,
                                        2, /*threads=*/1, &reg);
  };
  obs::Registry reg1;
  auto array = make(reg1);
  auto data = random_bytes(static_cast<size_t>(array->capacity()), 9);
  array->write(0, data);

  array->disk(1).faults().inject_transient_errors(3);  // == retry budget
  std::vector<uint8_t> out(static_cast<size_t>(array->capacity()));
  array->read(0, out);
  EXPECT_EQ(out, data);
  EXPECT_FALSE(array->disk(1).failed());
  EXPECT_EQ(reg1.counter("raid.engine.transient_retries").value(), 3);
  EXPECT_EQ(reg1.counter("raid.engine.retry_exhausted").value(), 0);

  obs::Registry reg2;
  array = make(reg2);
  array->write(0, data);
  array->disk(1).faults().inject_transient_errors(1000);
  // Retry exhaustion escalates the disk to fail-stop; the array fails
  // over to the degraded path within the same read instead of surfacing
  // DiskFailedError to the caller.
  array->read(0, out);
  EXPECT_EQ(out, data);
  EXPECT_TRUE(array->disk(1).failed());
  EXPECT_EQ(array->health().state(1), DiskHealth::kFailed);
  EXPECT_EQ(reg2.counter("raid.engine.retry_exhausted").value(), 1);
  EXPECT_EQ(reg2.counter("raid.engine.transient_retries").value(), 3);
  EXPECT_GE(reg2.counter("raid.failovers").value(), 1);
  // Degraded reads keep working afterwards too.
  array->read(0, out);
  EXPECT_EQ(out, data);
}

// The persistence satellite: a file-backed array crashes mid-write,
// recovers through the journal, is destroyed, and a SECOND array over
// the same files (reuse=true) sees consistent, identical contents —
// i.e. the write-hole round-trip works against real files, not RAM.
TEST(FileBackedArrayTest, JournalRecoverySurvivesArrayReconstruction) {
  constexpr size_t kElem = 128;
  const std::string stem = temp_path("dcode-bdtest-array");
  auto factory = [&stem](bool reuse, bool cleanup) -> DeviceFactory {
    return [stem, reuse, cleanup](int id, size_t size)
               -> std::unique_ptr<BlockDevice> {
      FileDisk::Options opts;
      opts.reuse = reuse;
      opts.unlink_on_close = cleanup;
      return std::make_unique<FileDisk>(
          id, size, stem + "-" + std::to_string(id), opts);
    };
  };

  std::vector<uint8_t> data;
  std::vector<uint8_t> expect;
  {
    ArrayOptions opts;
    opts.device_factory = factory(/*reuse=*/false, /*cleanup=*/false);
    Raid6Array array(codes::make_layout("dcode", 5), kElem, 3, /*threads=*/1,
                     nullptr, std::move(opts));
    data = random_bytes(static_cast<size_t>(array.capacity()), 10);
    array.write(0, data);
    array.enable_journal();
    array.inject_power_loss_after(2);
    EXPECT_THROW(array.write(0, random_bytes(2 * kElem, 11)), PowerLossError);

    array.restart();
    EXPECT_FALSE(array.journal_open_stripes().empty());
    EXPECT_EQ(array.journal_recover(), 1);
    EXPECT_EQ(array.scrub(), 0);
    expect.resize(static_cast<size_t>(array.capacity()));
    array.read(0, expect);
    EXPECT_GT(array.flush(), 0);
  }  // first array gone; only the files remain

  {
    ArrayOptions opts;
    opts.device_factory = factory(/*reuse=*/true, /*cleanup=*/true);
    Raid6Array array(codes::make_layout("dcode", 5), kElem, 3, /*threads=*/1,
                     nullptr, std::move(opts));
    EXPECT_EQ(array.scrub(), 0);  // parities consistent straight off disk
    std::vector<uint8_t> out(static_cast<size_t>(array.capacity()));
    array.read(0, out);
    EXPECT_EQ(out, expect);
    // The crash landed writes the journal then re-encoded around; the
    // rest of the address space is untouched original data.
    EXPECT_TRUE(std::equal(out.begin() + 2 * kElem, out.end(),
                           data.begin() + 2 * kElem));
  }
  for (int d = 0; d < 5; ++d) {
    EXPECT_NE(::access((stem + "-" + std::to_string(d)).c_str(), F_OK), 0);
  }
}

}  // namespace
}  // namespace dcode::raid

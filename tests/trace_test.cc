// Tests for the trace file format: round-trips, comment/blank handling,
// strict parse errors.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/trace.h"

namespace dcode::sim {
namespace {

TEST(Trace, RoundTripPreservesEverything) {
  WorkloadParams p;
  p.operations = 200;
  p.start_space = 100;
  auto ops = generate_workload(WorkloadKind::kMixed, p);

  std::ostringstream out;
  save_trace(ops, out);
  std::istringstream in(out.str());
  auto loaded = load_trace(in);

  ASSERT_EQ(loaded.size(), ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(loaded[i].is_write, ops[i].is_write) << i;
    EXPECT_EQ(loaded[i].start, ops[i].start) << i;
    EXPECT_EQ(loaded[i].len, ops[i].len) << i;
    EXPECT_EQ(loaded[i].times, ops[i].times) << i;
  }
}

TEST(Trace, CommentsBlanksAndCaseAccepted) {
  std::istringstream in(
      "# header comment\n"
      "\n"
      "R 0 4\n"
      "w 10 2 5   # inline comment\n"
      "   \n"
      "r 3 1 1\n");
  auto ops = load_trace(in);
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_FALSE(ops[0].is_write);
  EXPECT_EQ(ops[0].start, 0);
  EXPECT_EQ(ops[0].len, 4);
  EXPECT_EQ(ops[0].times, 1);  // default
  EXPECT_TRUE(ops[1].is_write);
  EXPECT_EQ(ops[1].times, 5);
  EXPECT_FALSE(ops[2].is_write);
}

TEST(Trace, MalformedLinesRejectedWithLineNumbers) {
  auto expect_throw_mentioning = [](const std::string& text,
                                    const std::string& needle) {
    std::istringstream in(text);
    try {
      (void)load_trace(in);
      FAIL() << "expected parse failure for: " << text;
    } catch (const std::logic_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_throw_mentioning("X 0 4\n", "line 1");
  expect_throw_mentioning("R 0\n", "line 1");
  expect_throw_mentioning("R 0 4 2 junk\n", "trailing");
  expect_throw_mentioning("R -5 4\n", "out of range");
  expect_throw_mentioning("W 0 0\n", "out of range");
  expect_throw_mentioning("R 1 1\nW 2\n", "line 2");
}

TEST(Trace, MissingFileRejected) {
  EXPECT_THROW((void)load_trace_file("/nonexistent/path/ops.trace"),
               std::logic_error);
}

TEST(Trace, FileRoundTrip) {
  std::vector<Op> ops = {{false, 7, 3, 1}, {true, 0, 20, 999}};
  const std::string path = "/tmp/dcode_trace_test.trace";
  save_trace_file(ops, path);
  auto loaded = load_trace_file(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[1].times, 999);
}

}  // namespace
}  // namespace dcode::sim

// Runtime observability of the RAID layer: the array's per-disk element
// access counters must agree exactly with the planner's IoPlan
// predictions (healthy and degraded), operation counters must track what
// the array actually did, and the ThreadPool/scrub/journal introspection
// must report truthfully.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include "codes/registry.h"
#include "obs/metrics.h"
#include "raid/planner.h"
#include "raid/raid6_array.h"
#include "sim/io_stats.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dcode::raid {
namespace {

constexpr size_t kElem = 64;

std::unique_ptr<Raid6Array> make_array(obs::Registry& reg, int p = 7,
                                       int64_t stripes = 4) {
  return std::make_unique<Raid6Array>(codes::make_layout("dcode", p), kElem,
                                      stripes, /*threads=*/1, &reg);
}

std::vector<uint8_t> random_bytes(size_t n, uint64_t seed) {
  std::vector<uint8_t> buf(n);
  Pcg32 rng(seed);
  rng.fill_bytes(buf.data(), buf.size());
  return buf;
}

// Per-disk access tally predicted by a plan (reads and writes both count
// one element access, matching MemDisk element granularity).
std::vector<int64_t> predicted(const IoPlan& plan, int disks) {
  std::vector<int64_t> per_disk(static_cast<size_t>(disks), 0);
  for (const auto& a : plan.accesses) {
    per_disk[static_cast<size_t>(a.disk)]++;
  }
  return per_disk;
}

TEST(RuntimeVsPlanner, HealthyReadMatchesIoPlan) {
  obs::Registry reg;
  auto array = make_array(reg);
  auto data = random_bytes(static_cast<size_t>(array->capacity()), 1);
  array->write(0, data);

  const int64_t start = 3;
  const int len = 11;
  array->reset_stats();
  std::vector<uint8_t> out(static_cast<size_t>(len) * kElem);
  array->read(start * static_cast<int64_t>(kElem), out);

  AddressMap map(array->layout());
  IoPlanner planner(map);
  EXPECT_EQ(array->per_disk_element_accesses(),
            predicted(planner.plan_read(start, len), array->layout().cols()));
}

TEST(RuntimeVsPlanner, DegradedReadMatchesIoPlan) {
  obs::Registry reg;
  auto array = make_array(reg);
  auto data = random_bytes(static_cast<size_t>(array->capacity()), 2);
  array->write(0, data);

  const int failed = 2;
  array->fail_disk(failed);
  const int64_t start = 0;
  const int len = 13;
  array->reset_stats();
  std::vector<uint8_t> out(static_cast<size_t>(len) * kElem);
  array->read(start * static_cast<int64_t>(kElem), out);
  EXPECT_TRUE(std::equal(out.begin(), out.end(), data.begin()));

  AddressMap map(array->layout());
  IoPlanner planner(map);
  int fd[1] = {failed};
  EXPECT_EQ(array->per_disk_element_accesses(),
            predicted(planner.plan_degraded_read(start, len, fd),
                      array->layout().cols()));
}

TEST(RuntimeVsPlanner, DoubleDegradedReadMatchesIoPlan) {
  obs::Registry reg;
  auto array = make_array(reg, /*p=*/7, /*stripes=*/2);
  auto data = random_bytes(static_cast<size_t>(array->capacity()), 3);
  array->write(0, data);

  array->fail_disk(1);
  array->fail_disk(4);
  array->reset_stats();
  const int len = 9;
  std::vector<uint8_t> out(static_cast<size_t>(len) * kElem);
  array->read(0, out);
  EXPECT_TRUE(std::equal(out.begin(), out.end(), data.begin()));

  AddressMap map(array->layout());
  IoPlanner planner(map);
  int fd[2] = {1, 4};
  EXPECT_EQ(array->per_disk_element_accesses(),
            predicted(planner.plan_degraded_read(0, len, fd),
                      array->layout().cols()));
}

TEST(RuntimeVsPlanner, HealthyWriteMatchesRmwIoPlan) {
  obs::Registry reg;
  auto array = make_array(reg);
  auto data = random_bytes(static_cast<size_t>(array->capacity()), 4);
  array->write(0, data);

  const int64_t start = 5;
  const int len = 7;
  array->reset_stats();
  auto fresh = random_bytes(static_cast<size_t>(len) * kElem, 5);
  array->write(start * static_cast<int64_t>(kElem), fresh);

  // The byte-level array always applies delta-based read-modify-write in
  // healthy mode, so the RMW plan is the exact prediction.
  AddressMap map(array->layout());
  IoPlanner planner(map);
  EXPECT_EQ(
      array->per_disk_element_accesses(),
      predicted(planner.plan_write(start, len, WritePolicy::kReadModifyWrite),
                array->layout().cols()));
}

TEST(RuntimeVsPlanner, PerDiskCountersMirrorObsCountersAndMemDisks) {
  obs::Registry reg;
  auto array = make_array(reg);
  auto data = random_bytes(static_cast<size_t>(array->capacity()), 6);
  array->write(0, data);
  std::vector<uint8_t> out(static_cast<size_t>(array->capacity()));
  array->read(0, out);

  auto per_disk = array->per_disk_element_accesses();
  ASSERT_EQ(per_disk.size(), static_cast<size_t>(array->layout().cols()));
  for (int d = 0; d < array->layout().cols(); ++d) {
    const auto& disk = array->disk(d);
    EXPECT_EQ(per_disk[static_cast<size_t>(d)], disk.reads() + disk.writes());
    // The labeled registry counters saw every one of those accesses too
    // (this registry is private to the array, so the totals coincide).
    obs::Labels l = {{"disk", std::to_string(d)}};
    EXPECT_EQ(reg.counter("raid.disk.element_reads", l).value(),
              disk.reads());
    EXPECT_EQ(reg.counter("raid.disk.element_writes", l).value(),
              disk.writes());
  }

  array->publish_disk_metrics(reg);
  EXPECT_EQ(reg.gauge("raid.disk.reads", {{"disk", "0"}}).value(),
            array->disk(0).reads());
  EXPECT_EQ(reg.gauge("raid.disk.failed", {{"disk", "0"}}).value(), 0);
}

TEST(RuntimeVsPlanner, OperationCountersTrackWhatHappened) {
  obs::Registry reg;
  auto array = make_array(reg);
  auto data = random_bytes(static_cast<size_t>(array->capacity()), 7);
  array->write(0, data);
  std::vector<uint8_t> out(kElem);
  array->read(0, out);
  array->read(static_cast<int64_t>(kElem), out);

  array->fail_disk(0);
  array->read(0, out);  // degraded
  array->write(0, std::vector<uint8_t>(kElem, 0xAB));  // degraded

  array->replace_disk(0);
  array->rebuild();

  EXPECT_EQ(reg.counter("raid.reads").value(), 2);
  EXPECT_EQ(reg.counter("raid.writes").value(), 1);
  EXPECT_EQ(reg.counter("raid.degraded_reads").value(), 1);
  EXPECT_EQ(reg.counter("raid.degraded_writes").value(), 1);
  EXPECT_EQ(reg.counter("raid.rebuilds").value(), 1);
  EXPECT_GT(reg.counter("raid.elements_reconstructed").value(), 0);
  EXPECT_EQ(reg.counter("raid.bytes_read").value(),
            static_cast<int64_t>(3 * kElem));
  EXPECT_EQ(reg.gauge("raid.disks_failed").value(), 0);  // repaired
  EXPECT_EQ(reg.counter("raid.disk.failures", {{"disk", "0"}}).value(), 1);

  // Latency histograms observed one sample per operation.
  auto snap = reg.snapshot();
  for (const auto& m : snap.metrics) {
    if (m.name == "raid.read_latency_ns") {
      EXPECT_EQ(m.count, 3);
    } else if (m.name == "raid.write_latency_ns") {
      EXPECT_EQ(m.count, 2);
    } else if (m.name == "raid.rebuild_latency_ns") {
      EXPECT_EQ(m.count, 1);
    }
  }
}

TEST(RuntimeVsPlanner, ScrubReportNamesTheInconsistentStripes) {
  obs::Registry reg;
  auto array = make_array(reg, /*p=*/7, /*stripes=*/5);
  auto data = random_bytes(static_cast<size_t>(array->capacity()), 8);
  array->write(0, data);
  EXPECT_EQ(array->scrub(), 0);

  // Corrupt one data byte in stripes 1 and 3, bypassing the array.
  const int rows = array->layout().rows();
  for (int64_t stripe : {int64_t{1}, int64_t{3}}) {
    uint8_t byte;
    size_t off = static_cast<size_t>(stripe) * rows * kElem;
    array->disk(0).read(off, {&byte, 1});
    byte ^= 0xFF;
    array->disk(0).write(off, {&byte, 1});
  }

  ScrubReport report = array->scrub_report();
  EXPECT_EQ(report.stripes_checked, 5);
  EXPECT_EQ(report.inconsistent_stripes, (std::vector<int64_t>{1, 3}));
  EXPECT_EQ(reg.counter("raid.scrub.stripes_inconsistent").value(), 2);
  EXPECT_GE(reg.counter("raid.scrub.stripes_checked").value(), 10);
}

TEST(RuntimeVsPlanner, JournalMetricsCountIntentsAndRecovery) {
  obs::Registry reg;
  auto array = make_array(reg, /*p=*/7, /*stripes=*/3);
  array->enable_journal();
  auto data = random_bytes(static_cast<size_t>(array->capacity()), 9);
  array->write(0, data);
  EXPECT_EQ(reg.counter("raid.journal.intents_opened").value(), 3);
  EXPECT_EQ(reg.counter("raid.journal.commits").value(), 3);

  // Crash mid-write, then recover: exactly the open stripes replay.
  array->inject_power_loss_after(3);
  EXPECT_THROW(array->write(0, std::vector<uint8_t>(kElem, 0x55)),
               PowerLossError);
  array->restart();
  int64_t repaired = array->journal_recover();
  EXPECT_EQ(repaired, 1);
  EXPECT_EQ(reg.counter("raid.journal.recoveries").value(), 1);
  EXPECT_EQ(reg.counter("raid.journal.replayed_stripes").value(), 1);
}

// --- Coalescing equivalence -----------------------------------------------
// The engine may merge adjacent element accesses into vectored transfers
// and fan disks across the pool, but the element-granular accounting (and
// the returned bytes) must be identical to the naive element-at-a-time
// configuration: same per-disk counts the planner predicts, different
// device op counts.

std::unique_ptr<Raid6Array> make_array_mode(obs::Registry& reg, bool batched,
                                            int p = 7, int64_t stripes = 4) {
  ArrayOptions o;
  o.coalesce = batched;
  o.parallel_user_io = batched;
  return std::make_unique<Raid6Array>(codes::make_layout("dcode", p), kElem,
                                      stripes, batched ? 4u : 1u, &reg,
                                      std::move(o));
}

// Both arrays hold the same contents; returns them reset and verified.
std::pair<std::unique_ptr<Raid6Array>, std::unique_ptr<Raid6Array>>
make_twin_arrays(obs::Registry& r1, obs::Registry& r2, uint64_t seed,
                 int p = 7, int64_t stripes = 4) {
  auto batched = make_array_mode(r1, true, p, stripes);
  auto naive = make_array_mode(r2, false, p, stripes);
  auto data = random_bytes(static_cast<size_t>(batched->capacity()), seed);
  batched->write(0, data);
  naive->write(0, data);
  batched->reset_stats();
  naive->reset_stats();
  return {std::move(batched), std::move(naive)};
}

TEST(CoalescingEquivalence, HealthyReadAccountingMatches) {
  obs::Registry r1, r2;
  auto [batched, naive] = make_twin_arrays(r1, r2, 20);
  std::vector<uint8_t> out1(static_cast<size_t>(batched->capacity()));
  std::vector<uint8_t> out2(out1.size());
  batched->read(0, out1);
  naive->read(0, out2);
  EXPECT_EQ(out1, out2);
  EXPECT_EQ(batched->per_disk_element_accesses(),
            naive->per_disk_element_accesses());
  // The naive engine issues one device op per element; the batched one
  // strictly fewer (full columns are contiguous).
  EXPECT_EQ(naive->disk(0).device_read_ops(), naive->disk(0).reads());
  EXPECT_LT(batched->disk(0).device_read_ops(), batched->disk(0).reads());
  EXPECT_EQ(batched->disk(0).reads(), naive->disk(0).reads());
}

TEST(CoalescingEquivalence, RmwWriteAccountingMatches) {
  obs::Registry r1, r2;
  auto [batched, naive] = make_twin_arrays(r1, r2, 21);
  auto fresh = random_bytes(9 * kElem, 22);
  batched->write(2 * static_cast<int64_t>(kElem), fresh);
  naive->write(2 * static_cast<int64_t>(kElem), fresh);
  EXPECT_EQ(batched->per_disk_element_accesses(),
            naive->per_disk_element_accesses());

  std::vector<uint8_t> out1(static_cast<size_t>(batched->capacity()));
  std::vector<uint8_t> out2(out1.size());
  batched->read(0, out1);
  naive->read(0, out2);
  EXPECT_EQ(out1, out2);
}

TEST(CoalescingEquivalence, DegradedReadAccountingMatches) {
  obs::Registry r1, r2;
  auto [batched, naive] = make_twin_arrays(r1, r2, 23);
  batched->fail_disk(2);
  naive->fail_disk(2);
  batched->reset_stats();
  naive->reset_stats();

  std::vector<uint8_t> out1(13 * kElem);
  std::vector<uint8_t> out2(out1.size());
  batched->read(0, out1);
  naive->read(0, out2);
  EXPECT_EQ(out1, out2);
  EXPECT_EQ(batched->per_disk_element_accesses(),
            naive->per_disk_element_accesses());
}

TEST(CoalescingEquivalence, DoubleDegradedReadAccountingMatches) {
  obs::Registry r1, r2;
  auto [batched, naive] = make_twin_arrays(r1, r2, 24, /*p=*/7, /*stripes=*/2);
  for (auto* a : {batched.get(), naive.get()}) {
    a->fail_disk(1);
    a->fail_disk(4);
    a->reset_stats();
  }

  std::vector<uint8_t> out1(9 * kElem);
  std::vector<uint8_t> out2(out1.size());
  batched->read(0, out1);
  naive->read(0, out2);
  EXPECT_EQ(out1, out2);
  EXPECT_EQ(batched->per_disk_element_accesses(),
            naive->per_disk_element_accesses());
}

TEST(IoStatsBridge, VectorConstructorAndMerge) {
  sim::IoStats runtime(std::vector<int64_t>{4, 0, 6});
  EXPECT_EQ(runtime.disks(), 3);
  EXPECT_EQ(runtime.total(), 10);
  EXPECT_EQ(runtime.max_load(), 6);
  EXPECT_EQ(runtime.min_load(), 0);
  EXPECT_TRUE(std::isinf(runtime.load_balancing_factor()));

  sim::IoStats more(3);
  more.add(0, 1);
  more.add(1, 2);
  more.add(2, 3);
  runtime.merge(more);
  EXPECT_EQ(runtime.per_disk(), (std::vector<int64_t>{5, 2, 9}));
  EXPECT_EQ(runtime.min_load(), 2);

  sim::IoStats wrong(4);
  EXPECT_THROW(runtime.merge(wrong), std::logic_error);

  sim::IoStats empty(0);
  EXPECT_EQ(empty.min_load(), 0);
  EXPECT_EQ(empty.max_load(), 0);
}

TEST(IoStatsBridge, RuntimeAccessesFeedTheSimMetrics) {
  obs::Registry reg;
  auto array = make_array(reg);
  auto data = random_bytes(static_cast<size_t>(array->capacity()), 10);
  array->write(0, data);
  array->reset_stats();
  std::vector<uint8_t> out(static_cast<size_t>(array->capacity()));
  array->read(0, out);

  sim::IoStats stats(array->per_disk_element_accesses());
  // A full read touches every data element once and no parities: with
  // D-Code's two parity rows per disk, every disk carries data, so no
  // disk is idle and LF is finite.
  EXPECT_EQ(stats.total(),
            array->layout().data_count() * array->stripes());
  EXPECT_GE(stats.load_balancing_factor(), 1.0);
  EXPECT_FALSE(std::isinf(stats.load_balancing_factor()));
}

TEST(ThreadPoolStats, CountsTasksAndQueueHighWater) {
  ThreadPool pool(4);
  std::atomic<int64_t> sum{0};
  pool.parallel_for(1000, [&sum](size_t i) {
    sum.fetch_add(static_cast<int64_t>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 1000 * 999 / 2);

  ThreadPool::Stats stats = pool.stats();
  // 1000 items over 4 workers dispatch as 4 chunks.
  EXPECT_EQ(stats.tasks_run, 4);
  EXPECT_GE(stats.queue_depth_high_water, 1);
  EXPECT_LE(stats.queue_depth_high_water, 4);
  EXPECT_GE(stats.busy_ns, 0);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.active_workers, 0u);

  // Inline execution (single-item range) bypasses the queue: no new
  // dispatched tasks are recorded.
  pool.parallel_for(1, [](size_t) {});
  EXPECT_EQ(pool.stats().tasks_run, 4);
}

}  // namespace
}  // namespace dcode::raid

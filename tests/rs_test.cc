// Tests for the Reed–Solomon codecs (the jerasure-role baselines):
// round-trips through every erasure pattern up to m losses.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "rs/cauchy_rs.h"
#include "rs/reed_solomon.h"
#include "util/rng.h"

namespace dcode::rs {
namespace {

struct Buffers {
  std::vector<std::vector<uint8_t>> data, coding;
  std::vector<const uint8_t*> data_c;
  std::vector<uint8_t*> data_m, coding_m;

  Buffers(int k, int m, size_t size, uint64_t seed) {
    Pcg32 rng(seed);
    data.resize(static_cast<size_t>(k), std::vector<uint8_t>(size));
    coding.resize(static_cast<size_t>(m), std::vector<uint8_t>(size));
    for (auto& d : data) rng.fill_bytes(d.data(), size);
    for (auto& d : data) {
      data_c.push_back(d.data());
      data_m.push_back(d.data());
    }
    for (auto& c : coding) coding_m.push_back(c.data());
  }

  Buffers clone() const { return *this; }

  Buffers(const Buffers& other) : data(other.data), coding(other.coding) {
    for (auto& d : data) {
      data_c.push_back(d.data());
      data_m.push_back(d.data());
    }
    for (auto& c : coding) coding_m.push_back(c.data());
  }

  void wipe(int id, int k) {
    auto& v = id < k ? data[static_cast<size_t>(id)]
                     : coding[static_cast<size_t>(id - k)];
    std::fill(v.begin(), v.end(), 0xDD);
  }

  bool equals(const Buffers& other) const {
    return data == other.data && coding == other.coding;
  }
};

// ---------- generic matrix RS ----------

using RsParam = std::tuple<int, int, int, GeneratorKind>;  // k, m, w, kind

class RsCodecTest : public ::testing::TestWithParam<RsParam> {};

INSTANTIATE_TEST_SUITE_P(
    Shapes, RsCodecTest,
    ::testing::Combine(::testing::Values(2, 3, 5, 10),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values(8, 16),
                       ::testing::Values(GeneratorKind::kCauchy,
                                         GeneratorKind::kVandermonde)));

TEST_P(RsCodecTest, AllErasurePatternsRecover) {
  auto [k, m, w, kind] = GetParam();
  RsCodec codec(k, m, w, kind);
  const size_t size = 128;
  Buffers good(k, m, size, 42);
  codec.encode(good.data_c, good.coding_m, size);

  // Every pattern of up to m erasures over k + m devices.
  const int n = k + m;
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    if (__builtin_popcount(mask) > m) continue;
    Buffers broken = good.clone();
    std::vector<int> erased;
    for (int id = 0; id < n; ++id) {
      if (mask & (1u << id)) {
        erased.push_back(id);
        broken.wipe(id, k);
      }
    }
    ASSERT_TRUE(codec.decode(broken.data_m, broken.coding_m, erased, size))
        << "mask=" << mask;
    ASSERT_TRUE(broken.equals(good)) << "mask=" << mask;
  }
}

TEST(RsCodec, TooManyErasuresReportsFailure) {
  RsCodec codec(4, 2, 8);
  const size_t size = 64;
  Buffers b(4, 2, size, 1);
  codec.encode(b.data_c, b.coding_m, size);
  std::vector<int> erased = {0, 1, 2};
  EXPECT_THROW((void)codec.decode(b.data_m, b.coding_m, erased, size),
               std::logic_error);
}

TEST(RsCodec, RejectsOversizedGeometry) {
  EXPECT_THROW(RsCodec(250, 10, 8), std::logic_error);
  EXPECT_NO_THROW(RsCodec(250, 6, 8));
}

TEST(RsCodec, EncodeIsDeterministic) {
  RsCodec codec(5, 2, 8);
  const size_t size = 96;
  Buffers a(5, 2, size, 7), b(5, 2, size, 7);
  codec.encode(a.data_c, a.coding_m, size);
  codec.encode(b.data_c, b.coding_m, size);
  EXPECT_TRUE(a.equals(b));
}

// ---------- RAID-6 P/Q ----------

class PqTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ks, PqTest, ::testing::Values(1, 2, 3, 8, 15));

TEST_P(PqTest, AllSingleAndDoubleErasures) {
  const int k = GetParam();
  Raid6PqCodec codec(k);
  const size_t size = 80;
  Buffers good(k, 2, size, 99);
  codec.encode(good.data_c, good.coding_m[0], good.coding_m[1], size);

  const int n = k + 2;
  for (int a = 0; a < n; ++a) {
    {
      Buffers broken = good.clone();
      broken.wipe(a, k);
      std::vector<int> erased = {a};
      codec.decode(broken.data_m, broken.coding_m[0], broken.coding_m[1],
                   erased, size);
      ASSERT_TRUE(broken.equals(good)) << "single erase " << a;
    }
    for (int b = a + 1; b < n; ++b) {
      Buffers broken = good.clone();
      broken.wipe(a, k);
      broken.wipe(b, k);
      std::vector<int> erased = {a, b};
      codec.decode(broken.data_m, broken.coding_m[0], broken.coding_m[1],
                   erased, size);
      ASSERT_TRUE(broken.equals(good)) << "double erase " << a << "," << b;
    }
  }
}

TEST(Pq, PParityIsPlainXor) {
  const int k = 4;
  Raid6PqCodec codec(k);
  const size_t size = 32;
  Buffers b(k, 2, size, 3);
  codec.encode(b.data_c, b.coding_m[0], b.coding_m[1], size);
  for (size_t i = 0; i < size; ++i) {
    uint8_t x = 0;
    for (int d = 0; d < k; ++d) x ^= b.data[static_cast<size_t>(d)][i];
    EXPECT_EQ(b.coding[0][i], x);
  }
}

// ---------- Cauchy RS (bitmatrix) ----------

using CrsParam = std::tuple<int, int, int, bool>;  // k, m, w, smart

class CauchyRsTest : public ::testing::TestWithParam<CrsParam> {};

INSTANTIATE_TEST_SUITE_P(Shapes, CauchyRsTest,
                         ::testing::Combine(::testing::Values(2, 4, 7),
                                            ::testing::Values(2, 3),
                                            ::testing::Values(4, 8),
                                            ::testing::Bool()));

TEST_P(CauchyRsTest, AllErasurePatternsRecover) {
  auto [k, m, w, smart] = GetParam();
  CauchyRsCodec codec(k, m, w, smart);
  const size_t size = 16 * static_cast<size_t>(w);
  Buffers good(k, m, size, 11);
  codec.encode(good.data_c, good.coding_m, size);

  const int n = k + m;
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    if (__builtin_popcount(mask) > m) continue;
    Buffers broken = good.clone();
    std::vector<int> erased;
    for (int id = 0; id < n; ++id) {
      if (mask & (1u << id)) {
        erased.push_back(id);
        broken.wipe(id, k);
      }
    }
    ASSERT_TRUE(codec.decode(broken.data_m, broken.coding_m, erased, size))
        << "mask=" << mask;
    ASSERT_TRUE(broken.equals(good)) << "mask=" << mask;
  }
}

TEST(CauchyRs, IdentityBlocksPassDataThrough) {
  // The bit-plane packing differs from byte-wise GF(256) packing, so
  // coding bytes are not comparable to the matrix codec's — but an
  // identity generator must reproduce the data verbatim in either
  // packing, which pins the bitmatrix expansion and schedule executor.
  const int k = 2, w = 8;
  const size_t size = 128;
  gf::Matrix ident = gf::Matrix::identity(k);
  gf::BitMatrix bm = gf::to_bitmatrix(gf::gf8(), ident);
  auto schedule = gf::smart_schedule(bm, k, k, w);

  Pcg32 rng(21);
  std::vector<std::vector<uint8_t>> data(k, std::vector<uint8_t>(size));
  for (auto& d : data) rng.fill_bytes(d.data(), size);
  std::vector<std::vector<uint8_t>> coding(k, std::vector<uint8_t>(size, 7));
  std::vector<const uint8_t*> dp;
  std::vector<uint8_t*> cp;
  for (auto& d : data) dp.push_back(d.data());
  for (auto& c : coding) cp.push_back(c.data());
  gf::apply_schedule(schedule, dp, cp, w, size);
  EXPECT_EQ(coding, data);
}

TEST(CauchyRs, ScheduleXorCountReported) {
  CauchyRsCodec smart(6, 2, 8, true);
  CauchyRsCodec dumb(6, 2, 8, false);
  EXPECT_GT(dumb.schedule_xors(), 0u);
  EXPECT_LE(smart.schedule_xors(), dumb.schedule_xors());
}

TEST(CauchyRs, RequiresPacketDivisibleSize) {
  CauchyRsCodec codec(3, 2, 8);
  Buffers b(3, 2, 100, 5);  // 100 % 8 != 0
  EXPECT_THROW(codec.encode(b.data_c, b.coding_m, 100), std::logic_error);
}

}  // namespace
}  // namespace dcode::rs

// Fault-tolerance tests: the MDS property, exhaustively.
//
// For every code and every prime in the paper's sweep, encode a random
// stripe, erase every possible pair of disks, decode, and demand the
// original bytes back. The GE decoder doubles as the oracle; the peeling
// decoder is additionally required to succeed alone for the pure XOR
// codes (it is the I/O-optimal path a real controller uses).
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <tuple>

#include "codes/decoder.h"
#include "codes/encoder.h"
#include "codes/hdp.h"
#include "codes/registry.h"
#include "util/rng.h"

namespace dcode::codes {
namespace {

using Param = std::tuple<std::string, int>;

class MdsProperty : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    layout_ = make_layout(std::get<0>(GetParam()), std::get<1>(GetParam()));
    Pcg32 rng(0xD15C + static_cast<uint64_t>(std::get<1>(GetParam())));
    stripe_ = std::make_unique<Stripe>(*layout_, kElementSize);
    stripe_->randomize_data(rng);
    encode_stripe(*stripe_);
  }

  static constexpr size_t kElementSize = 16;
  std::unique_ptr<CodeLayout> layout_;
  std::unique_ptr<Stripe> stripe_;
};

INSTANTIATE_TEST_SUITE_P(
    AllCodes, MdsProperty,
    ::testing::Combine(::testing::Values("dcode", "xcode", "rdp", "evenodd",
                                         "hcode", "hdp", "pcode", "liberation"),
                       ::testing::Values(5, 7, 11, 13)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

TEST_P(MdsProperty, EveryDoubleDiskFailureDecodes) {
  const auto& name = std::get<0>(GetParam());
  for (int f1 = 0; f1 < layout_->cols(); ++f1) {
    for (int f2 = f1 + 1; f2 < layout_->cols(); ++f2) {
      Stripe broken = stripe_->clone();
      broken.erase_disk(f1);
      broken.erase_disk(f2);
      int disks[2] = {f1, f2};
      auto lost = elements_of_disks(*layout_, disks);

      DecodeResult res;
      if (name == "evenodd" || name == "liberation") {
        // EVENODD's S adjuster and liberation's extra bits couple the
        // equations, so some failure pairs need elimination.
        res = hybrid_decode(broken, lost);
      } else {
        res = peel_decode(broken, lost);  // pure XOR codes must peel
      }
      ASSERT_TRUE(res.success) << "failed disks " << f1 << "," << f2;
      ASSERT_TRUE(broken.equals(*stripe_))
          << "wrong bytes after recovering disks " << f1 << "," << f2;
    }
  }
}

TEST_P(MdsProperty, EverySingleDiskFailureDecodes) {
  for (int f = 0; f < layout_->cols(); ++f) {
    Stripe broken = stripe_->clone();
    broken.erase_disk(f);
    int disks[1] = {f};
    auto lost = elements_of_disks(*layout_, disks);
    auto res = peel_decode(broken, lost);
    ASSERT_TRUE(res.success) << "failed disk " << f;
    ASSERT_TRUE(broken.equals(*stripe_)) << "failed disk " << f;
  }
}

TEST_P(MdsProperty, GeDecoderAgreesWithPeeling) {
  // Both decoders must reconstruct identical bytes (cross-validation).
  const int f1 = 0, f2 = layout_->cols() / 2;
  int disks[2] = {f1, f2};
  auto lost = elements_of_disks(*layout_, disks);

  Stripe a = stripe_->clone();
  a.erase_disk(f1);
  a.erase_disk(f2);
  auto res_ge = ge_decode(a, lost);
  ASSERT_TRUE(res_ge.success);
  ASSERT_TRUE(a.equals(*stripe_));
}

TEST_P(MdsProperty, ThreeDiskFailuresAreRejected) {
  // RAID-6 tolerance is exactly two: the feasibility oracle must say no
  // for any three whole disks.
  if (layout_->cols() < 3) GTEST_SKIP();
  int disks[3] = {0, 1, layout_->cols() - 1};
  auto lost = elements_of_disks(*layout_, disks);
  EXPECT_FALSE(is_recoverable(*layout_, lost));

  Stripe broken = stripe_->clone();
  for (int d : disks) broken.erase_disk(d);
  EXPECT_FALSE(hybrid_decode(broken, lost).success);
}

TEST_P(MdsProperty, RecoverabilityOracleAcceptsAllPairs) {
  for (int f1 = 0; f1 < layout_->cols(); ++f1) {
    for (int f2 = f1 + 1; f2 < layout_->cols(); ++f2) {
      int disks[2] = {f1, f2};
      auto lost = elements_of_disks(*layout_, disks);
      EXPECT_TRUE(is_recoverable(*layout_, lost))
          << "pair " << f1 << "," << f2;
    }
  }
}

TEST_P(MdsProperty, ScatteredElementErasuresDecode) {
  // Beyond whole-disk failures: random scatters of <= 2 elements per
  // equation-column pattern. Any set of elements confined to two columns
  // is recoverable; also try small random scatters and accept whatever
  // the oracle says, checking decode agrees with it.
  Pcg32 rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    int nlost = 1 + static_cast<int>(rng.next_below(4));
    std::set<Element> chosen;
    while (static_cast<int>(chosen.size()) < nlost) {
      chosen.insert(make_element(
          static_cast<int>(rng.next_below(static_cast<uint32_t>(layout_->rows()))),
          static_cast<int>(rng.next_below(static_cast<uint32_t>(layout_->cols())))));
    }
    std::vector<Element> lost(chosen.begin(), chosen.end());
    bool feasible = is_recoverable(*layout_, lost);

    Stripe broken = stripe_->clone();
    for (const Element& e : lost) {
      std::memset(broken.at(e), 0xAB, kElementSize);
    }
    auto res = hybrid_decode(broken, lost);
    EXPECT_EQ(res.success, feasible);
    if (res.success) {
      EXPECT_TRUE(broken.equals(*stripe_));
    }
  }
}

TEST_P(MdsProperty, DecodeReportsWorkDone) {
  Stripe broken = stripe_->clone();
  broken.erase_disk(1);
  int disks[1] = {1};
  auto lost = elements_of_disks(*layout_, disks);
  auto res = peel_decode(broken, lost);
  ASSERT_TRUE(res.success);
  EXPECT_GT(res.xor_ops, 0u);
  EXPECT_EQ(res.steps, lost.size());
}

TEST(MdsEdgeCases, EmptyLossIsTriviallyRecovered) {
  auto layout = make_layout("dcode", 7);
  Pcg32 rng(1);
  Stripe s(*layout, 8);
  s.randomize_data(rng);
  encode_stripe(s);
  std::vector<Element> none;
  EXPECT_TRUE(peel_decode(s, none).success);
  EXPECT_TRUE(ge_decode(s, none).success);
  EXPECT_TRUE(is_recoverable(*layout, none));
}

TEST(MdsEdgeCases, DuplicateLostElementRejected) {
  auto layout = make_layout("dcode", 7);
  Pcg32 rng(1);
  Stripe s(*layout, 8);
  std::vector<Element> dup = {make_element(0, 0), make_element(0, 0)};
  EXPECT_THROW((void)peel_decode(s, dup), std::logic_error);
}

TEST(MdsEdgeCases, HdpShippedVariantIsTheValidatedOne) {
  // Guard against accidental default changes: the searched variant whose
  // write-cascade behaviour matches the paper's Figure 5 (see hdp.h).
  HdpVariant v;
  EXPECT_TRUE(v.row_covers_anti_parity);
  EXPECT_FALSE(v.anti_covers_horizontal_parity);
  EXPECT_EQ(v.family, HdpVariant::Family::kDiff);
  EXPECT_EQ(v.slope, -2);
  EXPECT_EQ(v.offset, -2);
}

TEST(MdsEdgeCases, AlternativeHdpVariantAlsoValidated) {
  // The other MDS construction the search found (sum family, row not
  // covering the embedded parity) — kept working as a variant.
  HdpVariant v;
  v.row_covers_anti_parity = false;
  v.anti_covers_horizontal_parity = true;
  v.family = HdpVariant::Family::kSum;
  v.slope = -1;
  v.offset = -3;
  for (int p : {5, 7, 11}) {
    HdpLayout layout(p, v);
    Pcg32 rng(3);
    Stripe s(layout, 8);
    s.randomize_data(rng);
    encode_stripe(s);
    for (int f1 = 0; f1 < layout.cols(); ++f1) {
      for (int f2 = f1 + 1; f2 < layout.cols(); ++f2) {
        Stripe b = s.clone();
        b.erase_disk(f1);
        b.erase_disk(f2);
        int disks[2] = {f1, f2};
        auto lost = elements_of_disks(layout, disks);
        ASSERT_TRUE(hybrid_decode(b, lost).success) << p << ":" << f1 << ","
                                                    << f2;
        ASSERT_TRUE(b.equals(s));
      }
    }
  }
}

TEST(MdsEdgeCases, LargeElementSizeRoundTrip) {
  // 4 KiB elements (a realistic chunk) through a full double recovery.
  auto layout = make_layout("dcode", 11);
  Pcg32 rng(5);
  Stripe s(*layout, 4096);
  s.randomize_data(rng);
  encode_stripe(s);
  Stripe broken = s.clone();
  broken.erase_disk(3);
  broken.erase_disk(8);
  int disks[2] = {3, 8};
  auto lost = elements_of_disks(*layout, disks);
  ASSERT_TRUE(peel_decode(broken, lost).success);
  EXPECT_TRUE(broken.equals(s));
}

}  // namespace
}  // namespace dcode::codes

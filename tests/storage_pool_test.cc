// StoragePool tests: chunk/shard address routing (property: pool-level
// read(write(x)) == x across chunk boundaries, shard boundaries, and
// mid-restripe), online capacity add, aggregated health and namespaced
// metrics, and the end-to-end invariant — data written before a capacity
// add reads back bit-identical during and after the background restripe
// while one shard concurrently fails and rebuilds under traffic.
//
// The whole suite re-runs with DCODE_DISK_BACKEND=file (ctest leg
// storage_pool_test_file_backend), so every property here holds on every
// device backend.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "codes/registry.h"
#include "raid/journal.h"
#include "util/rng.h"
#include "volume/storage_pool.h"

namespace dcode::volume {
namespace {

ShardSpec small_spec() {
  ShardSpec spec;
  spec.prime = 5;
  spec.element_size = 512;
  spec.stripes = 16;
  return spec;
}

int64_t shard_capacity(const ShardSpec& spec) {
  auto layout = codes::make_layout(spec.code, spec.prime);
  return spec.stripes * layout->data_count() *
         static_cast<int64_t>(spec.element_size);
}

PoolOptions chunked(const ShardSpec& spec, int chunks_per_shard) {
  PoolOptions opts;
  opts.chunk_bytes = shard_capacity(spec) / chunks_per_shard;
  opts.pipeline.workers = 2;
  return opts;
}

std::vector<uint8_t> random_bytes(size_t n, uint64_t seed) {
  std::vector<uint8_t> out(n);
  Pcg32 rng(seed);
  rng.fill_bytes(out.data(), out.size());
  return out;
}

TEST(StoragePool, CapacityAndRoutingShape) {
  ShardSpec spec = small_spec();
  obs::Registry reg;
  StoragePool pool(spec, 3, chunked(spec, 8), &reg);
  EXPECT_EQ(pool.shard_count(), 3);
  EXPECT_EQ(pool.capacity(), 3 * shard_capacity(spec));
  EXPECT_EQ(pool.chunks_per_shard(), 8);
  EXPECT_EQ(reg.gauge("pool.shards").value(), 3);
  EXPECT_EQ(reg.gauge("pool.capacity_bytes").value(), pool.capacity());
}

// The core property: any sequence of pool writes reads back exactly, no
// matter how the byte ranges land on chunk and shard boundaries. The
// shadow is authoritative; ranges are drawn to hit boundaries often.
TEST(StoragePool, ReadWriteRoundTripProperty) {
  ShardSpec spec = small_spec();
  obs::Registry reg;
  StoragePool pool(spec, 3, chunked(spec, 8), &reg);
  const int64_t cap = pool.capacity();
  const int64_t chunk = pool.chunk_bytes();
  std::vector<uint8_t> shadow(static_cast<size_t>(cap), 0);
  pool.write(0, shadow);  // known baseline

  Pcg32 rng(42);
  for (int i = 0; i < 200; ++i) {
    int64_t offset;
    int64_t len;
    switch (i % 4) {
      case 0:  // straddle a chunk boundary
        offset = (1 + static_cast<int64_t>(rng.next_u32()) %
                          (cap / chunk - 1)) * chunk -
                 1 - static_cast<int64_t>(rng.next_u32() % 64);
        len = 2 + static_cast<int64_t>(rng.next_u32() % 128);
        break;
      case 1:  // whole chunks (shard-aligned fan-out)
        offset = (static_cast<int64_t>(rng.next_u32()) % (cap / chunk)) * chunk;
        len = chunk;
        break;
      case 2:  // multi-chunk span (crosses >= 2 shards)
        offset = static_cast<int64_t>(rng.next_u32()) % (cap - 3 * chunk);
        len = 2 * chunk + static_cast<int64_t>(rng.next_u32() % chunk);
        break;
      default:  // small random
        offset = static_cast<int64_t>(rng.next_u32()) % (cap - 512);
        len = 1 + static_cast<int64_t>(rng.next_u32() % 512);
        break;
    }
    offset = std::clamp<int64_t>(offset, 0, cap - 1);
    len = std::min(len, cap - offset);
    std::vector<uint8_t> data =
        random_bytes(static_cast<size_t>(len), 1000 + i);
    if (rng.next_u32() % 2 == 0) {
      pool.write(offset, data);
      std::memcpy(shadow.data() + offset, data.data(), data.size());
    }
    std::vector<uint8_t> got(static_cast<size_t>(len));
    pool.read(offset, got);
    ASSERT_EQ(0, std::memcmp(got.data(), shadow.data() + offset,
                             got.size()))
        << "mismatch at offset " << offset << " len " << len;
  }

  // Full-space verify, then prove the traffic really fanned out.
  std::vector<uint8_t> all(static_cast<size_t>(cap));
  pool.read(0, all);
  EXPECT_EQ(all, shadow);
  for (int s = 0; s < pool.shard_count(); ++s) {
    const std::string p = "shard" + std::to_string(s) + ".";
    EXPECT_GT(reg.counter(p + "raid.writes").value(), 0) << p;
  }
  EXPECT_GT(reg.counter("pool.reads").value(), 0);
  EXPECT_GT(reg.counter("pool.writes").value(), 0);
  EXPECT_GT(reg.histogram("pool.op_fanout", {1, 2, 4, 8, 16, 32, 64})
                .count(),
            0);
}

TEST(StoragePool, OutOfRangeOpsRejected) {
  ShardSpec spec = small_spec();
  obs::Registry reg;
  StoragePool pool(spec, 2, chunked(spec, 8), &reg);
  std::vector<uint8_t> buf(128);
  EXPECT_THROW(pool.read(-1, buf), std::logic_error);
  EXPECT_THROW(pool.write(pool.capacity() - 64, buf), std::logic_error);
  EXPECT_NO_THROW(pool.read(pool.capacity() - 128, buf));
}

TEST(StoragePool, RestripePreservesDataAndGrowsCapacity) {
  ShardSpec spec = small_spec();
  obs::Registry reg;
  StoragePool pool(spec, 2, chunked(spec, 8), &reg);
  const int64_t old_cap = pool.capacity();
  std::vector<uint8_t> data = random_bytes(static_cast<size_t>(old_cap), 5);
  pool.write(0, data);

  pool.add_shard();
  ASSERT_TRUE(pool.wait_for_restripe());
  EXPECT_EQ(pool.shard_count(), 3);
  EXPECT_EQ(pool.capacity(), 3 * shard_capacity(spec));
  EXPECT_EQ(pool.restripe_watermark(), 2 * pool.chunks_per_shard());

  std::vector<uint8_t> got(static_cast<size_t>(old_cap));
  pool.read(0, got);
  EXPECT_EQ(got, data);

  // The grown space is usable and independent.
  std::vector<uint8_t> extra =
      random_bytes(static_cast<size_t>(pool.capacity() - old_cap), 6);
  pool.write(old_cap, extra);
  std::vector<uint8_t> extra_got(extra.size());
  pool.read(old_cap, extra_got);
  EXPECT_EQ(extra_got, extra);
  pool.read(0, got);
  EXPECT_EQ(got, data);
  EXPECT_EQ(pool.scrub_all(), 0);
  EXPECT_GT(reg.counter("pool.restripe.chunks_moved").value(), 0);
}

// Mid-restripe the watermark splits the space between old and new
// placement; reads must be bit-identical on both sides of the front, and
// writes must land wherever the chunk currently routes.
TEST(StoragePool, MidRestripeReadsAndWritesAreBitIdentical) {
  ShardSpec spec = small_spec();
  obs::Registry reg;
  PoolOptions opts = chunked(spec, 16);  // 32 chunks to migrate
  opts.restripe_rate_chunks_per_sec = 60.0;  // ~0.5 s of mid-flight window
  opts.restripe_burst_chunks = 1.0;
  StoragePool pool(spec, 2, opts, &reg);
  const int64_t cap = pool.capacity();
  std::vector<uint8_t> shadow = random_bytes(static_cast<size_t>(cap), 9);
  pool.write(0, shadow);

  pool.add_shard();
  Pcg32 rng(10);
  bool saw_mid_flight = false;
  std::vector<uint8_t> got(static_cast<size_t>(cap));
  while (pool.restripe_in_progress()) {
    const int64_t wm = pool.restripe_watermark();
    if (wm > 0 && wm < 2 * pool.chunks_per_shard()) saw_mid_flight = true;
    // Full-space read: covers chunks on both sides of the watermark.
    pool.read(0, got);
    ASSERT_EQ(got, shadow);
    // Random small write, immediately verified.
    const int64_t offset = static_cast<int64_t>(rng.next_u32()) % (cap - 256);
    std::vector<uint8_t> patch = random_bytes(256, 11 + wm);
    pool.write(offset, patch);
    std::memcpy(shadow.data() + offset, patch.data(), patch.size());
  }
  ASSERT_TRUE(pool.wait_for_restripe());
  EXPECT_TRUE(saw_mid_flight);
  pool.read(0, got);
  EXPECT_EQ(got, shadow);
  EXPECT_EQ(pool.scrub_all(), 0);
}

TEST(StoragePool, AggregatedHealthCountsShardStates) {
  ShardSpec spec = small_spec();
  spec.hot_spares = 1;
  spec.array.background_rebuild = true;
  obs::Registry reg;
  StoragePool pool(spec, 3, chunked(spec, 8), &reg);

  PoolHealth before = pool.health();
  EXPECT_EQ(before.shards.size(), 3u);
  EXPECT_EQ(before.degraded_shards, 0);
  EXPECT_EQ(before.crashed_shards, 0);

  pool.shard_array(1).fail_disk(2);  // promotes the spare, rebuilds
  ASSERT_TRUE(pool.shard_array(1).wait_for_rebuild());
  PoolHealth after = pool.health();
  EXPECT_EQ(after.degraded_shards, 0);  // spare promoted and rebuilt
  EXPECT_EQ(after.shards[1].hot_spares, 0);
  EXPECT_EQ(after.shards[0].hot_spares, 1);

  // The collector publishes the same view as pool.* gauges.
  (void)reg.snapshot();
  EXPECT_EQ(reg.gauge("pool.degraded_shards").value(), 0);
  EXPECT_GT(reg.counter("shard1.raid.spare_promotions").value(), 0);
}

// The acceptance invariant: data written before a capacity add reads
// back bit-identical during and after the background restripe, with one
// shard concurrently failing and rebuilding while the pool serves
// traffic from multiple threads.
TEST(StoragePool, CapacityAddSurvivesShardRebuildUnderTraffic) {
  ShardSpec spec = small_spec();
  spec.stripes = 32;
  spec.hot_spares = 1;
  spec.array.background_rebuild = true;
  spec.array.rebuild_rate_stripes_per_sec = 150.0;  // keep rebuild in-flight
  obs::Registry reg;
  PoolOptions opts = chunked(spec, 16);  // 48 chunks to migrate
  opts.restripe_rate_chunks_per_sec = 120.0;
  opts.restripe_burst_chunks = 1.0;
  StoragePool pool(spec, 3, opts, &reg);
  const int64_t cap = pool.capacity();

  // Region plan: [0, frozen_end) is written once and never touched again
  // (the "data written before capacity add"); [frozen_end, cap) belongs
  // to the writer thread.
  const int64_t frozen_end = cap / 2 / pool.chunk_bytes() *
                             pool.chunk_bytes();
  std::vector<uint8_t> frozen =
      random_bytes(static_cast<size_t>(frozen_end), 21);
  pool.write(0, frozen);
  std::vector<uint8_t> writer_region(static_cast<size_t>(cap - frozen_end),
                                     0);
  pool.write(frozen_end, writer_region);

  pool.add_shard();
  // Fail a disk in shard 1 while the restripe is mid-flight: the hot
  // spare promotes and the background rebuild runs concurrently.
  pool.shard_array(1).fail_disk(2);

  std::atomic<bool> stop{false};
  std::atomic<int> reader_mismatches{0};
  std::atomic<bool> failed_op{false};

  std::vector<std::thread> traffic;
  for (int t = 0; t < 2; ++t) {
    traffic.emplace_back([&, t] {
      Pcg32 rng(100 + static_cast<uint64_t>(t));
      std::vector<uint8_t> buf;
      while (!stop.load(std::memory_order_relaxed)) {
        const int64_t len =
            std::min<int64_t>(4096, frozen_end);
        const int64_t offset =
            static_cast<int64_t>(rng.next_u32()) % (frozen_end - len + 1);
        buf.resize(static_cast<size_t>(len));
        try {
          pool.read(offset, buf);
        } catch (...) {
          failed_op.store(true);
          return;
        }
        if (std::memcmp(buf.data(), frozen.data() + offset,
                        buf.size()) != 0) {
          reader_mismatches.fetch_add(1);
        }
      }
    });
  }
  traffic.emplace_back([&] {
    Pcg32 rng(200);
    uint64_t round = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const int64_t len = std::min<int64_t>(8192, cap - frozen_end);
      const int64_t offset =
          frozen_end + static_cast<int64_t>(rng.next_u32()) %
                           (cap - frozen_end - len + 1);
      std::vector<uint8_t> data =
          random_bytes(static_cast<size_t>(len), 300 + round++);
      try {
        pool.write(offset, data);
        std::memcpy(writer_region.data() + (offset - frozen_end),
                    data.data(), data.size());
      } catch (...) {
        failed_op.store(true);
        return;
      }
    }
  });

  // Let traffic overlap both the restripe and the rebuild, then finish
  // the migration at full speed.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_TRUE(pool.restripe_in_progress() ||
              pool.restripe_watermark() > 0);
  pool.set_restripe_rate(0.0);  // unthrottle
  ASSERT_TRUE(pool.wait_for_restripe());
  stop.store(true);
  for (auto& th : traffic) th.join();

  ASSERT_FALSE(failed_op.load());
  EXPECT_EQ(reader_mismatches.load(), 0);
  ASSERT_TRUE(pool.wait_for_rebuilds());

  // Bit-identical after: the frozen region, the writer's last state, and
  // a clean pool-wide scrub on the grown pool.
  EXPECT_EQ(pool.shard_count(), 4);
  EXPECT_EQ(pool.capacity(), 4 * shard_capacity(spec));
  std::vector<uint8_t> got(static_cast<size_t>(frozen_end));
  pool.read(0, got);
  EXPECT_EQ(got, frozen);
  std::vector<uint8_t> wgot(writer_region.size());
  pool.read(frozen_end, wgot);
  EXPECT_EQ(wgot, writer_region);
  EXPECT_EQ(pool.scrub_all(), 0);
  PoolHealth h = pool.health();
  EXPECT_EQ(h.degraded_shards, 0);
  EXPECT_FALSE(h.restriping);
  EXPECT_GT(reg.counter("shard1.raid.spare_promotions").value(), 0);
  EXPECT_GT(reg.counter("pool.restripe.chunks_moved").value(), 0);
}

// restart_all() must quiesce foreground writers across restart + journal
// replay: a write slipping between a crashed shard's restart() and its
// journal_recover() would RMW over the torn stripe, folding the stale
// parity into its delta and closing the crash's open intent behind it —
// invisible to recovery afterwards. Writers here hammer the pool while
// the crash and the reboot happen; the io gate makes them block across
// the replay, and the pool must come back journal-clean, scrub-clean,
// and bit-identical to the shadow.
TEST(StoragePool, RestartAllQuiescesConcurrentWriters) {
  ShardSpec spec = small_spec();
  spec.journal_slots = 64;
  obs::Registry reg;
  StoragePool pool(spec, 2, chunked(spec, 8), &reg);
  const int64_t cap = pool.capacity();
  std::vector<uint8_t> shadow = random_bytes(static_cast<size_t>(cap), 31);
  pool.write(0, shadow);

  constexpr int kWriters = 3;
  std::atomic<bool> stop{false};
  std::atomic<int> power_loss_hits{0};
  std::atomic<int> unexpected_errors{0};

  // Each writer owns an exclusive byte region (so the shared shadow
  // needs no locking) spanning several chunks of both shards. Every op
  // retries the same bytes until the write succeeds — a PowerLossError
  // may have landed part of a multi-chunk write already, and the retry
  // converges the region back onto the shadow.
  std::vector<std::thread> writers;
  const int64_t region = cap / kWriters;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      Pcg32 rng(500 + static_cast<uint64_t>(t));
      const int64_t begin = t * region;
      uint64_t round = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const int64_t len = std::min<int64_t>(
            region, pool.chunk_bytes() +
                        static_cast<int64_t>(rng.next_u32() % 1024));
        const int64_t offset =
            begin + static_cast<int64_t>(rng.next_u32()) % (region - len + 1);
        std::vector<uint8_t> data = random_bytes(
            static_cast<size_t>(len), 700 + round++ * kWriters + t);
        for (;;) {
          try {
            pool.write(offset, data);
            break;
          } catch (const raid::PowerLossError&) {
            power_loss_hits.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          } catch (...) {
            unexpected_errors.fetch_add(1);
            return;
          }
        }
        std::memcpy(shadow.data() + offset, data.data(), data.size());
      }
    });
  }

  // Crash shard 0 under the running traffic, give the writers time to
  // pile into the crashed shard, then reboot the pool while they are
  // still submitting.
  pool.shard_array(0).inject_power_loss_after(16);
  while (!pool.shard_array(0).crashed()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(pool.restart_all(), 1);

  // Post-reboot traffic, then settle.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  stop.store(true);
  for (auto& th : writers) th.join();

  EXPECT_EQ(unexpected_errors.load(), 0);
  EXPECT_GT(power_loss_hits.load(), 0);
  EXPECT_EQ(pool.journal_open_intents(), 0);
  EXPECT_EQ(pool.scrub_all(), 0);
  std::vector<uint8_t> got(static_cast<size_t>(cap));
  pool.read(0, got);
  EXPECT_EQ(got, shadow);
}

TEST(StoragePool, AddShardWhileRestripingRejected) {
  ShardSpec spec = small_spec();
  obs::Registry reg;
  PoolOptions opts = chunked(spec, 8);
  opts.restripe_rate_chunks_per_sec = 20.0;  // slow enough to catch
  opts.restripe_burst_chunks = 1.0;
  StoragePool pool(spec, 2, opts, &reg);
  pool.add_shard();
  if (pool.restripe_in_progress()) {
    EXPECT_THROW(pool.add_shard(), std::logic_error);
  }
  pool.set_restripe_rate(0.0);
  ASSERT_TRUE(pool.wait_for_restripe());
  EXPECT_NO_THROW(pool.add_shard());
  ASSERT_TRUE(pool.wait_for_restripe());
  EXPECT_EQ(pool.shard_count(), 4);
}

}  // namespace
}  // namespace dcode::volume

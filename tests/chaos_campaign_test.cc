// The deterministic chaos campaign: seeded fault schedules (fail-stop,
// transient bursts, silent corruption, power loss mid-write, and the
// acknowledged-but-wrong write families — misdirected, torn, lost)
// injected under a concurrent workload, with the self-healing
// invariants checked after every round:
//
//   * no data loss while concurrent failures stay within RAID-6
//     tolerance (reads always return what was written);
//   * repair-mode scrub converges to zero inconsistent stripes — for
//     the wrong-path write families that convergence is only possible
//     through the checksum sidecar (parity syndromes alone cannot
//     localize a lie the device acknowledged);
//   * journal recovery leaves no open intents and a consistent array;
//   * declared failures promote spares and rebuild to completion with
//     zero failed user reads.
//
// Everything is seeded through the repo's Pcg32 — same seed, same
// faults, same op streams — so a failure reproduces exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "chaos_schedule.h"
#include "codes/registry.h"
#include "raid/pipeline.h"
#include "raid/raid6_array.h"
#include "util/rng.h"
#include "volume/storage_pool.h"

namespace dcode::raid {
namespace {

constexpr size_t kElem = 256;
constexpr int64_t kStripes = 13;  // stripe 0 reserved for corruption
constexpr int kWorkers = 3;
constexpr int kOpsPerRound = 15;
constexpr int kRounds = 6;

struct ByteRange {
  int64_t offset = 0;
  int64_t len = 0;
};

// One workload thread's world: an exclusive byte region, its shadow
// copy, and what went wrong mid-round.
struct Worker {
  int64_t begin = 0;
  int64_t end = 0;
  std::vector<uint8_t> shadow;  // absolute-offset indexed via begin
  std::vector<ByteRange> suspects;  // writes interrupted by power loss
  int64_t verify_mismatches = 0;
  int64_t hard_failures = 0;  // DiskFailedError escaping the array
};

class ChaosCampaign : public ::testing::TestWithParam<uint64_t> {};

// Mixed read/verify/write ops over the worker's exclusive region. The
// shadow is updated *before* each write so an interrupted write's
// intended content survives as the repair source.
void run_workload(Raid6Array& array, Worker& w, uint64_t seed, int round) {
  Pcg32 rng(seed * 7919 + static_cast<uint64_t>(round) * 104729 + 13);
  const int64_t span = w.end - w.begin;
  for (int op = 0; op < kOpsPerRound; ++op) {
    const int64_t len =
        rng.next_in_range(1, static_cast<int>(3 * kElem));
    const int64_t off =
        w.begin + static_cast<int64_t>(rng.next_below(
                      static_cast<uint32_t>(span - len)));
    const bool is_write = rng.next_below(3) != 0;
    try {
      if (is_write) {
        rng.fill_bytes(w.shadow.data() + (off - w.begin),
                       static_cast<size_t>(len));
        ByteRange pending{off, len};
        array.write(off, std::span<const uint8_t>(
                             w.shadow.data() + (off - w.begin),
                             static_cast<size_t>(len)));
        (void)pending;  // completed: fully applied, shadow already matches
      } else {
        std::vector<uint8_t> out(static_cast<size_t>(len));
        array.read(off, out);
        if (std::memcmp(out.data(), w.shadow.data() + (off - w.begin),
                        static_cast<size_t>(len)) != 0) {
          ++w.verify_mismatches;
        }
      }
    } catch (const PowerLossError&) {
      if (is_write) w.suspects.push_back({off, len});
      return;  // array is down until the campaign restarts it
    } catch (const DiskFailedError&) {
      ++w.hard_failures;
      return;
    }
  }
}

TEST_P(ChaosCampaign, InvariantsHoldUnderSeededFaults) {
  const uint64_t seed = GetParam();
  auto layout = codes::make_layout("dcode", 7);
  const int disks = layout->cols();
  const int rows = layout->rows();
  const int64_t stripe_bytes =
      static_cast<int64_t>(layout->data_count()) *
      static_cast<int64_t>(kElem);

  ArrayOptions opts;
  opts.background_rebuild = true;
  obs::Registry reg;
  Raid6Array array(std::move(layout), kElem, kStripes, 4, &reg, opts);
  array.add_hot_spares(2 * kRounds);
  array.enable_journal(64);

  // Disjoint stripe-aligned regions, leaving stripe 0 as the quiet zone
  // silent corruption targets (no workload thread ever touches it, so
  // its content is exactly what repair-scrub must restore).
  const int64_t region_stripes = (kStripes - 1) / kWorkers;
  std::vector<Worker> workers(kWorkers);
  for (int t = 0; t < kWorkers; ++t) {
    workers[t].begin = (1 + t * region_stripes) * stripe_bytes;
    workers[t].end = workers[t].begin + region_stripes * stripe_bytes;
  }

  // Seed the array (and shadows) with known content.
  {
    Pcg32 rng(seed);
    std::vector<uint8_t> blob(static_cast<size_t>(array.capacity()));
    rng.fill_bytes(blob.data(), blob.size());
    array.write(0, blob);
    for (auto& w : workers) {
      w.shadow.assign(blob.begin() + w.begin, blob.begin() + w.end);
    }
  }
  ASSERT_EQ(array.scrub(), 0);

  const ChaosSchedule sched = make_chaos_schedule(seed, kRounds, disks);
  for (int round = 0; round < kRounds; ++round) {
    const ChaosEvent& ev = sched.rounds[static_cast<size_t>(round)];
    SCOPED_TRACE("seed " + std::to_string(seed) + " round " +
                 std::to_string(round) + " fault " + to_string(ev.kind));

    std::vector<std::thread> threads;
    threads.reserve(workers.size());
    for (int t = 0; t < kWorkers; ++t) {
      threads.emplace_back([&, t] {
        run_workload(array, workers[static_cast<size_t>(t)], seed, round);
      });
    }
    // Let the workload get in flight, then strike.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    switch (ev.kind) {
      case ChaosFault::kNone:
        break;
      case ChaosFault::kFailStop:
        if (array.failed_disk_count() < 2 && !array.disk(ev.disk).failed()) {
          array.fail_disk(ev.disk);
        }
        break;
      case ChaosFault::kDoubleFailStop:
        for (int d : {ev.disk, ev.disk2}) {
          if (array.failed_disk_count() < 2 && !array.disk(d).failed()) {
            array.fail_disk(d);
          }
        }
        break;
      case ChaosFault::kTransientShort:
      case ChaosFault::kTransientLong:
        if (!array.disk(ev.disk).failed()) {
          array.disk(ev.disk).faults().inject_transient_errors(ev.param);
        }
        break;
      case ChaosFault::kSilentCorruption: {
        // Flip bits in one element of quiet stripe 0 through the
        // unaccounted backdoor (deterministic, delta never zero).
        const int row = ev.disk % rows;
        const uint64_t off = static_cast<uint64_t>(row) * kElem;
        std::vector<uint8_t> buf(static_cast<size_t>(ev.param));
        array.disk(ev.disk).read(off, buf);
        for (auto& b : buf) b ^= 0x5A;
        array.disk(ev.disk).write(off, buf);
        break;
      }
      case ChaosFault::kPowerLoss:
        array.inject_power_loss_after(ev.param);
        break;
      // The acknowledged-but-wrong families: the device reports success
      // while the platter holds something else. Parity never sees an
      // error; only the checksum sidecar can localize these, so the
      // quiesce-time repair scrub below is their real assertion.
      case ChaosFault::kMisdirectedWrite:
        if (!array.disk(ev.disk).failed()) {
          array.disk(ev.disk).faults().inject_misdirected_writes(
              1, static_cast<uint64_t>(ev.param) * kElem);
        }
        break;
      case ChaosFault::kTornWrite:
        if (!array.disk(ev.disk).failed()) {
          array.disk(ev.disk).faults().inject_torn_writes(
              1, static_cast<size_t>(ev.param));
        }
        break;
      case ChaosFault::kLostWrite:
        if (!array.disk(ev.disk).failed()) {
          array.disk(ev.disk).faults().inject_lost_writes(
              static_cast<int>(ev.param));
        }
        break;
    }
    for (auto& th : threads) th.join();

    // --- quiesce and verify every invariant ---------------------------
    // Clears both a consumed crash and an unconsumed write budget.
    array.restart();
    // Disarm any unconsumed wrong-path write budget: the repair writes
    // the scrub below issues must actually land.
    for (int d = 0; d < disks; ++d) {
      array.disk(d).faults().clear_wrong_path_writes();
    }
    if (!array.wait_for_rebuild()) {
      array.rebuild();  // crash interrupted the worker: finish in sync
    }
    EXPECT_TRUE(array.wait_for_rebuild());
    EXPECT_EQ(array.failed_disk_count(), 0);
    if (!array.journal_open_stripes().empty()) {
      array.journal_recover();
    }
    EXPECT_TRUE(array.journal_open_stripes().empty());
    // Interrupted writes: journal recovery made the stripes consistent
    // (possibly torn between old and new data); reissue the intended
    // content from the shadow.
    for (auto& w : workers) {
      for (const ByteRange& r : w.suspects) {
        array.write(r.offset,
                    std::span<const uint8_t>(
                        w.shadow.data() + (r.offset - w.begin),
                        static_cast<size_t>(r.len)));
      }
      w.suspects.clear();
    }
    // Repair-scrub converges: one pass fixes what it finds, the second
    // finds nothing.
    ScrubReport rep = array.scrub_report({.repair = true});
    EXPECT_EQ(rep.stripes_unrepairable, 0);
    if (rep.stripes_unrepairable != 0) {
      std::string ss;
      for (int64_t s : rep.inconsistent_stripes) {
        ss += std::to_string(s) + " ";
      }
      ADD_FAILURE() << "unrepairable diagnostic: inconsistent stripes [ "
                    << ss << "] located=" << rep.elements_located
                    << " repaired=" << rep.elements_repaired
                    << " skipped=" << rep.equations_skipped;
    }
    // Leftover transients from the burst can escalate DURING the scrub
    // (health budget), promoting a spare mid-pass; drain that rebuild so
    // the convergence check runs against a fully live array.
    EXPECT_TRUE(array.wait_for_rebuild());
    EXPECT_EQ(array.scrub(), 0);
    // No data loss: every region reads back exactly as its shadow.
    for (auto& w : workers) {
      EXPECT_EQ(w.hard_failures, 0);
      EXPECT_EQ(w.verify_mismatches, 0);
      std::vector<uint8_t> out(static_cast<size_t>(w.end - w.begin));
      array.read(w.begin, out);
      EXPECT_EQ(out, w.shadow);
    }
  }

  // Campaign-level accounting: every escalated disk was promoted and
  // rebuilt; nothing is left failed or mid-rebuild. (kSuspect is fine —
  // absorbed transient bursts legitimately leave a disk on watch.)
  EXPECT_EQ(reg.gauge("raid.rebuild.in_progress").value(), 0);
  for (int d = 0; d < disks; ++d) {
    EXPECT_NE(array.health().state(d), DiskHealth::kFailed) << "disk " << d;
    EXPECT_NE(array.health().state(d), DiskHealth::kRebuilding)
        << "disk " << d;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosCampaign,
                         ::testing::Range<uint64_t>(1, 11),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// --- the pipelined campaign ------------------------------------------------
// Same invariants as the synchronous campaign, but the workload now
// flows through a shared StripePipeline: two submitters race pipelined
// reads/writes (merging on, several workers) over exclusive
// stripe-aligned regions while fail-stop / double-fail-stop / power-loss
// faults strike mid-flight. Proves the journal, the failover replay
// contract, and the rebuild watermark hold under true inter-stripe
// concurrency — ops on distinct stripes really do execute in parallel
// here, unlike the per-thread synchronous calls above.

class PipelineChaosCampaign : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineChaosCampaign, InvariantsHoldUnderConcurrentSchedules) {
  const uint64_t seed = GetParam();
  auto layout = codes::make_layout("dcode", 7);
  const int disks = layout->cols();
  const int64_t stripe_bytes =
      static_cast<int64_t>(layout->data_count()) *
      static_cast<int64_t>(kElem);
  constexpr int kSubmitters = 2;
  constexpr int kPipelineRounds = 5;
  constexpr int kSubmitsPerRound = 24;

  ArrayOptions opts;
  opts.background_rebuild = true;
  obs::Registry reg;
  Raid6Array array(std::move(layout), kElem, kStripes, 4, &reg, opts);
  array.add_hot_spares(2 * kPipelineRounds);
  array.enable_journal(64);

  const int64_t region_stripes = (kStripes - 1) / kSubmitters;
  std::vector<Worker> workers(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    workers[t].begin = (1 + t * region_stripes) * stripe_bytes;
    workers[t].end = workers[t].begin + region_stripes * stripe_bytes;
  }
  {
    Pcg32 rng(seed);
    std::vector<uint8_t> blob(static_cast<size_t>(array.capacity()));
    rng.fill_bytes(blob.data(), blob.size());
    array.write(0, blob);
    for (auto& w : workers) {
      w.shadow.assign(blob.begin() + w.begin, blob.begin() + w.end);
    }
  }
  ASSERT_EQ(array.scrub(), 0);

  const ChaosSchedule sched =
      make_concurrent_chaos_schedule(seed, kPipelineRounds, disks);
  for (int round = 0; round < kPipelineRounds; ++round) {
    const ChaosEvent& ev = sched.rounds[static_cast<size_t>(round)];
    SCOPED_TRACE("seed " + std::to_string(seed) + " round " +
                 std::to_string(round) + " fault " + to_string(ev.kind));

    {
      // Fresh pipeline per round; its destructor drains every queued op
      // before the quiesce block runs.
      StripePipeline pipe(array, {.workers = 3,
                                  .queue_depth = 64,
                                  .merge_writes = true,
                                  .merge_limit = 8});
      std::vector<std::thread> threads;
      threads.reserve(static_cast<size_t>(kSubmitters));
      for (int t = 0; t < kSubmitters; ++t) {
        threads.emplace_back([&, t] {
          Worker& w = workers[static_cast<size_t>(t)];
          Pcg32 rng(seed * 6151 + static_cast<uint64_t>(round) * 3271 +
                    static_cast<uint64_t>(t));
          struct Pending {
            OpFuture f;
            bool is_write;
            ByteRange range;
            std::unique_ptr<std::vector<uint8_t>> read_buf;
            std::vector<uint8_t> expect;  // reads: shadow at submit time
          };
          std::vector<Pending> pending;
          auto settle = [&](size_t keep) {
            while (pending.size() > keep) {
              Pending p = std::move(pending.front());
              pending.erase(pending.begin());
              try {
                p.f.get();
                if (!p.is_write &&
                    std::memcmp(p.read_buf->data(), p.expect.data(),
                                p.expect.size()) != 0) {
                  ++w.verify_mismatches;
                }
              } catch (const PowerLossError&) {
                if (p.is_write) w.suspects.push_back(p.range);
              } catch (const DiskFailedError&) {
                ++w.hard_failures;
              }
            }
          };
          for (int op = 0; op < kSubmitsPerRound; ++op) {
            const int64_t span = w.end - w.begin;
            const int64_t len =
                rng.next_in_range(1, static_cast<int>(3 * kElem));
            const int64_t off =
                w.begin + static_cast<int64_t>(rng.next_below(
                              static_cast<uint32_t>(span - len)));
            const bool is_write = rng.next_below(3) != 0;
            if (is_write) {
              rng.fill_bytes(w.shadow.data() + (off - w.begin),
                             static_cast<size_t>(len));
              auto f = pipe.submit_write(
                  off, std::span<const uint8_t>(
                           w.shadow.data() + (off - w.begin),
                           static_cast<size_t>(len)));
              pending.push_back(
                  {std::move(f), true, {off, len}, nullptr, {}});
            } else {
              auto buf = std::make_unique<std::vector<uint8_t>>(
                  static_cast<size_t>(len));
              std::vector<uint8_t> expect(
                  w.shadow.begin() + (off - w.begin),
                  w.shadow.begin() + (off - w.begin) + len);
              auto f = pipe.submit_read(
                  off, std::span<uint8_t>(buf->data(), buf->size()));
              pending.push_back({std::move(f),
                                 false,
                                 {off, len},
                                 std::move(buf),
                                 std::move(expect)});
            }
            settle(6);
          }
          settle(0);
        });
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      switch (ev.kind) {
        case ChaosFault::kNone:
          break;
        case ChaosFault::kFailStop:
          if (array.failed_disk_count() < 2 &&
              !array.disk(ev.disk).failed()) {
            array.fail_disk(ev.disk);
          }
          break;
        case ChaosFault::kDoubleFailStop:
          for (int d : {ev.disk, ev.disk2}) {
            if (array.failed_disk_count() < 2 && !array.disk(d).failed()) {
              array.fail_disk(d);
            }
          }
          break;
        case ChaosFault::kPowerLoss:
          array.inject_power_loss_after(ev.param);
          break;
        default:
          break;
      }
      for (auto& th : threads) th.join();
    }  // ~StripePipeline: queue closed, drained, workers joined

    // --- quiesce and verify (same block as the synchronous campaign) ---
    array.restart();
    if (!array.wait_for_rebuild()) {
      array.rebuild();
    }
    EXPECT_TRUE(array.wait_for_rebuild());
    EXPECT_EQ(array.failed_disk_count(), 0);
    if (!array.journal_open_stripes().empty()) {
      array.journal_recover();
    }
    EXPECT_TRUE(array.journal_open_stripes().empty());
    for (auto& w : workers) {
      for (const ByteRange& r : w.suspects) {
        array.write(r.offset,
                    std::span<const uint8_t>(
                        w.shadow.data() + (r.offset - w.begin),
                        static_cast<size_t>(r.len)));
      }
      w.suspects.clear();
    }
    ScrubReport rep = array.scrub_report({.repair = true});
    EXPECT_EQ(rep.stripes_unrepairable, 0);
    EXPECT_TRUE(array.wait_for_rebuild());
    EXPECT_EQ(array.scrub(), 0);
    for (auto& w : workers) {
      EXPECT_EQ(w.hard_failures, 0);
      EXPECT_EQ(w.verify_mismatches, 0);
      std::vector<uint8_t> out(static_cast<size_t>(w.end - w.begin));
      array.read(w.begin, out);
      EXPECT_EQ(out, w.shadow);
    }
  }

  EXPECT_EQ(reg.gauge("raid.rebuild.in_progress").value(), 0);
  for (int d = 0; d < disks; ++d) {
    EXPECT_NE(array.health().state(d), DiskHealth::kFailed) << "disk " << d;
    EXPECT_NE(array.health().state(d), DiskHealth::kRebuilding)
        << "disk " << d;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineChaosCampaign,
                         ::testing::Range<uint64_t>(1, 6),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// The focused TSan target: a disk dies and a spare is promoted while
// reads and writes are in flight on every pool thread; nothing may
// surface to callers and the rebuild must run to completion.
TEST(ConcurrentFailover, SparePromotionUnderConcurrentLoad) {
  auto layout = codes::make_layout("dcode", 7);
  const int64_t stripe_bytes =
      static_cast<int64_t>(layout->data_count()) *
      static_cast<int64_t>(kElem);
  ArrayOptions opts;
  opts.background_rebuild = true;
  obs::Registry reg;
  Raid6Array array(std::move(layout), kElem, /*stripes=*/12, 4, &reg, opts);
  array.add_hot_spares(1);

  Pcg32 seed_rng(99);
  std::vector<uint8_t> blob(static_cast<size_t>(array.capacity()));
  seed_rng.fill_bytes(blob.data(), blob.size());
  array.write(0, blob);

  constexpr int kThreads = 4;
  const int64_t region = 3 * stripe_bytes;
  std::atomic<int64_t> errors{0};
  std::vector<std::vector<uint8_t>> shadows(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    const int64_t begin = t * region;
    shadows[static_cast<size_t>(t)].assign(blob.begin() + begin,
                                           blob.begin() + begin + region);
    threads.emplace_back([&, t, begin] {
      auto& shadow = shadows[static_cast<size_t>(t)];
      Pcg32 rng(1000 + static_cast<uint64_t>(t));
      for (int op = 0; op < 30; ++op) {
        const int64_t len = rng.next_in_range(1, static_cast<int>(2 * kElem));
        const int64_t off = begin + static_cast<int64_t>(rng.next_below(
                                        static_cast<uint32_t>(region - len)));
        try {
          if (rng.next_below(2) == 0) {
            rng.fill_bytes(shadow.data() + (off - begin),
                           static_cast<size_t>(len));
            array.write(off, std::span<const uint8_t>(
                                 shadow.data() + (off - begin),
                                 static_cast<size_t>(len)));
          } else {
            std::vector<uint8_t> out(static_cast<size_t>(len));
            array.read(off, out);
            if (std::memcmp(out.data(), shadow.data() + (off - begin),
                            static_cast<size_t>(len)) != 0) {
              errors.fetch_add(1);
            }
          }
        } catch (...) {
          errors.fetch_add(1);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  array.fail_disk(2);
  for (auto& th : threads) th.join();

  EXPECT_TRUE(array.wait_for_rebuild());
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(array.failed_disk_count(), 0);
  EXPECT_EQ(array.hot_spares(), 0);
  EXPECT_EQ(array.health().state(2), DiskHealth::kHealthy);
  EXPECT_EQ(reg.counter("raid.spare_promotions").value(), 1);
  EXPECT_EQ(array.scrub(), 0);
  for (int t = 0; t < kThreads; ++t) {
    std::vector<uint8_t> out(static_cast<size_t>(region));
    array.read(t * region, out);
    EXPECT_EQ(out, shadows[static_cast<size_t>(t)]) << "region " << t;
  }
}

// Rebuild watermark protocol: while the background worker is throttled
// to a crawl, reads above the watermark serve degraded and reads below
// serve from the spare — both return correct data throughout.
TEST(ConcurrentFailover, ThrottledRebuildServesReadsAroundTheWatermark) {
  ArrayOptions opts;
  opts.background_rebuild = true;
  opts.rebuild_rate_stripes_per_sec = 200.0;  // ~60ms for 12 stripes
  opts.rebuild_burst_stripes = 1.0;
  obs::Registry reg;
  Raid6Array array(codes::make_layout("dcode", 7), kElem, 12, 2, &reg, opts);
  array.add_hot_spares(1);

  Pcg32 rng(7);
  std::vector<uint8_t> blob(static_cast<size_t>(array.capacity()));
  rng.fill_bytes(blob.data(), blob.size());
  array.write(0, blob);

  array.fail_disk(3);
  EXPECT_EQ(array.failed_disk_count(), 0);  // spare promoted instantly
  // Reads while the rebuild crawls: all must be correct regardless of
  // which side of the watermark they land on.
  std::vector<uint8_t> out(static_cast<size_t>(array.capacity()));
  for (int i = 0; i < 5; ++i) {
    std::fill(out.begin(), out.end(), 0);
    array.read(0, out);
    ASSERT_EQ(out, blob) << "iteration " << i;
  }
  EXPECT_TRUE(array.wait_for_rebuild());
  EXPECT_EQ(array.scrub(), 0);
  EXPECT_GT(reg.counter("raid.rebuild.stripes_rebuilt").value(), 0);
}

// --- the pool campaign -----------------------------------------------------
// Scale-out invariants: every round attaches a shard to a StoragePool
// and, while the throttled restripe is mid-migration and concurrent
// writers hit every shard, one shard takes a fail-stop or power-loss
// fault. After each round the pool must converge: the restripe runs to
// completion (resumed after a crash stalls it), journals are clean
// pool-wide, repair-scrub finds nothing unrepairable on any shard, and
// the entire logical space — including data that crossed placements
// mid-fault — reads back exactly as the shadow.

class PoolChaosCampaign : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PoolChaosCampaign, ShardFaultsMidRestripeKeepPoolInvariants) {
  const uint64_t seed = GetParam();
  constexpr int kPoolRounds = 3;
  constexpr int kPoolWorkers = 3;
  constexpr int kPoolOps = 12;
  constexpr size_t kPoolElem = 256;

  volume::ShardSpec spec;
  spec.prime = 5;
  spec.element_size = kPoolElem;
  spec.stripes = 16;
  spec.array.background_rebuild = true;
  spec.hot_spares = kPoolRounds;  // worst case: every round hits one shard
  spec.journal_slots = 64;

  int disks_per_shard = 0;
  int64_t shard_cap = 0;
  {
    auto layout = codes::make_layout(spec.code, spec.prime);
    disks_per_shard = layout->cols();
    shard_cap = spec.stripes *
                static_cast<int64_t>(layout->data_count()) *
                static_cast<int64_t>(kPoolElem);
  }

  volume::PoolOptions popts;
  popts.chunk_bytes = shard_cap / 16;  // 16 chunks per shard
  popts.pipeline.workers = 2;
  popts.pipeline.merge_writes = true;
  obs::Registry reg;
  volume::StoragePool pool(spec, 2, popts, &reg);

  // The shadow covers the pool's live capacity; each round seeds the
  // space the previous restripe grew before the workload starts.
  std::vector<uint8_t> shadow;
  Pcg32 seed_rng(seed * 31 + 7);
  auto grow_shadow = [&] {
    const size_t cap = static_cast<size_t>(pool.capacity());
    if (shadow.size() < cap) {
      const size_t old = shadow.size();
      shadow.resize(cap);
      seed_rng.fill_bytes(shadow.data() + old, cap - old);
      pool.write(static_cast<int64_t>(old),
                 std::span<const uint8_t>(shadow.data() + old, cap - old));
    }
  };
  grow_shadow();
  ASSERT_EQ(pool.scrub_all(), 0);

  // Mixed ops over an exclusive region of the pooled space; lengths span
  // multiple chunks so single ops cross shard boundaries mid-restripe.
  auto run_pool_workload = [&](Worker& w, int round) {
    Pcg32 rng(seed * 4099 + static_cast<uint64_t>(round) * 9173 + 11);
    const int64_t span = w.end - w.begin;
    const int64_t max_len = std::min<int64_t>(span - 1, 5 * popts.chunk_bytes / 2);
    for (int op = 0; op < kPoolOps; ++op) {
      const int64_t len =
          rng.next_in_range(1, static_cast<int>(max_len));
      const int64_t off =
          w.begin + static_cast<int64_t>(rng.next_below(
                        static_cast<uint32_t>(span - len)));
      const bool is_write = rng.next_below(3) != 0;
      try {
        if (is_write) {
          rng.fill_bytes(shadow.data() + off, static_cast<size_t>(len));
          pool.write(off, std::span<const uint8_t>(
                              shadow.data() + off,
                              static_cast<size_t>(len)));
        } else {
          std::vector<uint8_t> out(static_cast<size_t>(len));
          pool.read(off, out);
          if (std::memcmp(out.data(), shadow.data() + off,
                          static_cast<size_t>(len)) != 0) {
            ++w.verify_mismatches;
          }
        }
      } catch (const PowerLossError&) {
        // A multi-shard write may have landed on the healthy shards
        // already; the shadow holds the intended content either way.
        if (is_write) w.suspects.push_back({off, len});
        return;  // the victim shard is down until the quiesce restarts it
      } catch (const DiskFailedError&) {
        ++w.hard_failures;
        return;
      }
    }
  };

  const ChaosSchedule sched =
      make_pool_chaos_schedule(seed, kPoolRounds, disks_per_shard);
  for (int round = 0; round < kPoolRounds; ++round) {
    const ChaosEvent& ev = sched.rounds[static_cast<size_t>(round)];
    SCOPED_TRACE("seed " + std::to_string(seed) + " round " +
                 std::to_string(round) + " fault " + to_string(ev.kind));
    grow_shadow();
    const int64_t cap = pool.capacity();

    std::vector<Worker> workers(kPoolWorkers);
    const int64_t region = cap / kPoolWorkers;
    for (int t = 0; t < kPoolWorkers; ++t) {
      workers[static_cast<size_t>(t)].begin = t * region;
      workers[static_cast<size_t>(t)].end = (t + 1) * region;
    }

    // Throttle the migrator to a crawl so the fault lands mid-restripe,
    // then attach the shard and let the writers race the watermark.
    pool.set_restripe_rate(150.0, 1.0);
    pool.add_shard();
    std::vector<std::thread> threads;
    threads.reserve(workers.size());
    for (int t = 0; t < kPoolWorkers; ++t) {
      threads.emplace_back(
          [&, t] { run_pool_workload(workers[static_cast<size_t>(t)], round); });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    EXPECT_TRUE(pool.restripe_in_progress());
    const int victim = ev.disk2 % pool.shard_count();
    switch (ev.kind) {
      case ChaosFault::kNone:
        break;
      case ChaosFault::kFailStop: {
        Raid6Array& a = pool.shard_array(victim);
        if (a.failed_disk_count() < 2 && !a.disk(ev.disk).failed()) {
          a.fail_disk(ev.disk);
        }
        break;
      }
      case ChaosFault::kPowerLoss:
        pool.shard_array(victim).inject_power_loss_after(ev.param);
        break;
      default:
        break;
    }
    for (auto& th : threads) th.join();

    // --- quiesce and verify the pool-wide invariants -------------------
    pool.set_restripe_rate(0.0);  // unthrottle the rest of the migration
    // Reboot: pauses the migrator, restarts + replays the crashed
    // shard's journal before any copy can touch it, then resumes a
    // stalled restripe — which must now run to completion.
    pool.restart_all();
    for (int i = 0; i < pool.shard_count(); ++i) {
      if (!pool.shard_array(i).wait_for_rebuild()) {
        pool.shard_array(i).rebuild();  // crash interrupted the worker
      }
    }
    EXPECT_TRUE(pool.wait_for_rebuilds());
    ASSERT_TRUE(pool.wait_for_restripe());
    pool.journal_recover_all();
    EXPECT_EQ(pool.journal_open_intents(), 0);
    EXPECT_EQ(pool.capacity(), cap + shard_cap);
    // Interrupted writes: journal recovery left the stripes consistent
    // (possibly torn); reissue the intended bytes — now routed through
    // the completed new placement.
    for (auto& w : workers) {
      for (const ByteRange& r : w.suspects) {
        pool.write(r.offset,
                   std::span<const uint8_t>(shadow.data() + r.offset,
                                            static_cast<size_t>(r.len)));
      }
      w.suspects.clear();
    }
    ScrubReport rep = pool.scrub_repair_all();
    EXPECT_EQ(rep.stripes_unrepairable, 0);
    if (rep.stripes_unrepairable != 0) {
      for (int i = 0; i < pool.shard_count(); ++i) {
        ScrubReport r = pool.shard_array(i).scrub_report({});
        if (r.inconsistent_stripes.empty()) continue;
        std::string ss;
        for (int64_t s : r.inconsistent_stripes) ss += std::to_string(s) + " ";
        ADD_FAILURE() << "shard " << i << " inconsistent stripes [ " << ss
                      << "] skipped=" << r.equations_skipped
                      << " failed_disks="
                      << pool.shard_array(i).failed_disk_count()
                      << " rebuilding="
                      << !pool.shard_array(i).wait_for_rebuild();
      }
    }
    EXPECT_TRUE(pool.wait_for_rebuilds());
    EXPECT_EQ(pool.scrub_all(), 0);
    for (auto& w : workers) {
      EXPECT_EQ(w.hard_failures, 0);
      EXPECT_EQ(w.verify_mismatches, 0);
    }
    std::vector<uint8_t> out(shadow.size());
    pool.read(0, out);
    EXPECT_EQ(out, shadow);
  }

  // Campaign accounting: every capacity add completed, nothing is left
  // failed, crashed, or mid-rebuild anywhere in the pool.
  EXPECT_EQ(pool.shard_count(), 2 + kPoolRounds);
  EXPECT_EQ(pool.capacity(),
            static_cast<int64_t>(2 + kPoolRounds) * shard_cap);
  const volume::PoolHealth health = pool.health();
  EXPECT_EQ(health.degraded_shards, 0);
  EXPECT_EQ(health.rebuilding_shards, 0);
  EXPECT_EQ(health.crashed_shards, 0);
  EXPECT_FALSE(health.restriping);
  EXPECT_EQ(reg.counter("pool.restripes").value(), kPoolRounds);
  EXPECT_GT(reg.counter("pool.restripe.chunks_moved").value(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolChaosCampaign,
                         ::testing::Range<uint64_t>(1, 6),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace dcode::raid

// Tests for D-Code's specialized chain decoder (paper §III-C), including
// the paper's exact Figure-3 recovery walkthrough.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "codes/dcode.h"
#include "codes/dcode_decoder.h"
#include "codes/decoder.h"
#include "codes/encoder.h"
#include "codes/xcode.h"
#include "util/rng.h"

namespace dcode::codes {
namespace {

class ChainDecoder : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Primes, ChainDecoder,
                         ::testing::Values(5, 7, 11, 13, 17));

TEST_P(ChainDecoder, RecoversEveryDiskPair) {
  const int n = GetParam();
  DCodeLayout layout(n);
  Pcg32 rng(static_cast<uint64_t>(n) * 31);
  Stripe good(layout, 32);
  good.randomize_data(rng);
  encode_stripe(good);

  for (int f1 = 0; f1 < n; ++f1) {
    for (int f2 = f1 + 1; f2 < n; ++f2) {
      Stripe broken = good.clone();
      broken.erase_disk(f1);
      broken.erase_disk(f2);
      auto res = dcode_decode_two_disks(broken, f1, f2);
      ASSERT_TRUE(res.success) << f1 << "," << f2;
      ASSERT_TRUE(broken.equals(good)) << f1 << "," << f2;
      // Every element of both columns appears exactly once.
      EXPECT_EQ(res.sequence.size(), static_cast<size_t>(2 * n));
    }
  }
}

TEST_P(ChainDecoder, XorCostMatchesOptimalDecodingComplexity) {
  // §III-D: decoding uses all 2n equations of n-3 XORs each ->
  // (n-3) XORs per lost element, 2n(n-3) total.
  const int n = GetParam();
  DCodeLayout layout(n);
  Pcg32 rng(7);
  Stripe s(layout, 16);
  s.randomize_data(rng);
  encode_stripe(s);
  Stripe broken = s.clone();
  broken.erase_disk(0);
  broken.erase_disk(1);
  auto res = dcode_decode_two_disks(broken, 0, 1);
  ASSERT_TRUE(res.success);
  EXPECT_EQ(res.xor_ops, static_cast<size_t>(2 * n * (n - 3)));
}

TEST(ChainDecoder, PaperFigure3RecoverySequences) {
  // Disks 2 and 3 fail in the n=7 stripe. The paper's first chain starts
  // from P[5][1] and proceeds D13 -> D22 -> D23 -> D32 -> D33 -> P62; the
  // second starts from P[6][4]: D42 -> D43 -> D02 -> D03 -> D12 -> P53.
  DCodeLayout layout(7);
  Pcg32 rng(3);
  Stripe s(layout, 8);
  s.randomize_data(rng);
  encode_stripe(s);
  Stripe broken = s.clone();
  broken.erase_disk(2);
  broken.erase_disk(3);
  auto res = dcode_decode_two_disks(broken, 2, 3);
  ASSERT_TRUE(res.success);
  ASSERT_TRUE(broken.equals(s));

  std::vector<Element> order;
  for (const auto& step : res.sequence) order.push_back(step.recovered);

  auto pos = [&](int r, int c) {
    auto it = std::find(order.begin(), order.end(), make_element(r, c));
    EXPECT_NE(it, order.end()) << "(" << r << "," << c << ") not recovered";
    return std::distance(order.begin(), it);
  };

  // Chain 1 (from P[5][1]) in the paper's exact order.
  const std::vector<Element> chain1 = {make_element(1, 3), make_element(2, 2),
                                       make_element(2, 3), make_element(3, 2),
                                       make_element(3, 3), make_element(6, 2)};
  EXPECT_TRUE(std::equal(chain1.begin(), chain1.end(), order.begin()))
      << "first chain must start the recovery";

  // Chain 2 (from P[6][4]) preserves its internal order.
  EXPECT_LT(pos(4, 2), pos(4, 3));
  EXPECT_LT(pos(4, 3), pos(0, 2));
  EXPECT_LT(pos(0, 2), pos(0, 3));
  EXPECT_LT(pos(0, 3), pos(1, 2));
  EXPECT_LT(pos(1, 2), pos(5, 3));

  // All 14 elements of the two disks are recovered.
  EXPECT_EQ(order.size(), 14u);
}

TEST(ChainDecoder, AdjacentDiskFailures) {
  DCodeLayout layout(11);
  Pcg32 rng(8);
  Stripe s(layout, 16);
  s.randomize_data(rng);
  encode_stripe(s);
  for (int f = 0; f < 11; ++f) {
    int f2 = (f + 1) % 11;
    Stripe broken = s.clone();
    broken.erase_disk(std::min(f, f2));
    broken.erase_disk(std::max(f, f2));
    auto res = dcode_decode_two_disks(broken, std::min(f, f2), std::max(f, f2));
    ASSERT_TRUE(res.success) << f;
    ASSERT_TRUE(broken.equals(s)) << f;
  }
}

TEST(ChainDecoder, AgreesWithGenericPeeling) {
  DCodeLayout layout(13);
  Pcg32 rng(12);
  Stripe s(layout, 64);
  s.randomize_data(rng);
  encode_stripe(s);

  Stripe via_chain = s.clone();
  via_chain.erase_disk(4);
  via_chain.erase_disk(9);
  ASSERT_TRUE(dcode_decode_two_disks(via_chain, 4, 9).success);

  Stripe via_peel = s.clone();
  via_peel.erase_disk(4);
  via_peel.erase_disk(9);
  int disks[2] = {4, 9};
  auto lost = elements_of_disks(layout, disks);
  ASSERT_TRUE(peel_decode(via_peel, lost).success);

  EXPECT_TRUE(via_chain.equals(via_peel));
  EXPECT_TRUE(via_chain.equals(s));
}

TEST(ChainDecoder, RejectsMisuse) {
  DCodeLayout layout(7);
  Stripe s(layout, 8);
  EXPECT_THROW((void)dcode_decode_two_disks(s, 2, 2), std::logic_error);
  EXPECT_THROW((void)dcode_decode_two_disks(s, -1, 3), std::logic_error);
  EXPECT_THROW((void)dcode_decode_two_disks(s, 0, 7), std::logic_error);

  XCodeLayout xl(7);
  Stripe xs(xl, 8);
  EXPECT_THROW((void)dcode_decode_two_disks(xs, 0, 1), std::logic_error);
}

}  // namespace
}  // namespace dcode::codes

// Cross-module integration tests: the whole pipeline (layout -> planner ->
// simulator -> disk model -> array) run together at small scale, plus
// consistency checks between the planner-counted I/O and the byte-level
// array's actual disk accesses.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "codes/decoder.h"
#include "codes/encoder.h"
#include "codes/registry.h"
#include "raid/planner.h"
#include "raid/raid6_array.h"
#include "rs/reed_solomon.h"
#include "sim/experiments.h"
#include "util/rng.h"

namespace dcode {
namespace {

using codes::make_layout;

TEST(Integration, PlannerCountsMatchArrayDiskAccessesForReads) {
  // A normal read of L elements must cost exactly L element reads, both
  // per the planner and per the MemDisk counters.
  auto array = raid::Raid6Array(make_layout("dcode", 7), 256, 4, 1);
  Pcg32 rng(1);
  std::vector<uint8_t> blob(static_cast<size_t>(array.capacity()));
  rng.fill_bytes(blob.data(), blob.size());
  array.write(0, blob);
  array.reset_stats();

  raid::AddressMap map(array.layout());
  raid::IoPlanner planner(map);
  const int64_t start_elem = 10;
  const int len = 12;
  raid::IoPlan plan = planner.plan_read(start_elem, len);

  std::vector<uint8_t> out(static_cast<size_t>(len) * 256);
  array.read(start_elem * 256, out);

  int64_t disk_reads = 0;
  for (int d = 0; d < array.layout().cols(); ++d)
    disk_reads += array.disk(d).reads();
  EXPECT_EQ(disk_reads, plan.total());
  EXPECT_EQ(disk_reads, len);
}

TEST(Integration, PlannerCountsMatchArrayAccessesForSingleElementWrite) {
  auto array = raid::Raid6Array(make_layout("dcode", 7), 128, 2, 1);
  Pcg32 rng(2);
  std::vector<uint8_t> blob(static_cast<size_t>(array.capacity()));
  rng.fill_bytes(blob.data(), blob.size());
  array.write(0, blob);
  array.reset_stats();

  raid::AddressMap map(array.layout());
  raid::IoPlanner planner(map);
  raid::IoPlan plan =
      planner.plan_write(5, 1, raid::WritePolicy::kReadModifyWrite);

  std::vector<uint8_t> patch(128);
  rng.fill_bytes(patch.data(), patch.size());
  array.write(5 * 128, patch);

  int64_t accesses = 0;
  for (int d = 0; d < array.layout().cols(); ++d)
    accesses += array.disk(d).reads() + array.disk(d).writes();
  // The array's delta-RMW write does exactly the planner's RMW I/O.
  EXPECT_EQ(accesses, plan.total());
}

class EveryCodeEndToEnd : public ::testing::TestWithParam<std::string> {};
INSTANTIATE_TEST_SUITE_P(Codes, EveryCodeEndToEnd,
                         ::testing::Values("dcode", "xcode", "rdp", "evenodd",
                                           "hcode", "hdp", "pcode", "liberation"),
                         [](const auto& info) { return info.param; });

TEST_P(EveryCodeEndToEnd, FullLifecycle) {
  // write -> fail -> degraded read -> degraded write -> replace ->
  // rebuild -> scrub -> second failure pair -> recover -> verify bytes.
  auto array = raid::Raid6Array(make_layout(GetParam(), 7), 128, 5, 2);
  Pcg32 rng(3);
  std::vector<uint8_t> shadow(static_cast<size_t>(array.capacity()));
  rng.fill_bytes(shadow.data(), shadow.size());
  array.write(0, shadow);

  array.fail_disk(0);
  std::vector<uint8_t> out(shadow.size());
  array.read(0, out);
  ASSERT_EQ(out, shadow);

  std::vector<uint8_t> patch(1000);
  rng.fill_bytes(patch.data(), patch.size());
  array.write(777, patch);
  std::copy(patch.begin(), patch.end(), shadow.begin() + 777);

  array.replace_disk(0);
  array.rebuild();
  ASSERT_EQ(array.scrub(), 0);

  array.fail_disk(2);
  array.fail_disk(4);
  array.read(0, out);
  ASSERT_EQ(out, shadow);
  array.replace_disk(2);
  array.replace_disk(4);
  array.rebuild();
  ASSERT_EQ(array.scrub(), 0);
  array.read(0, out);
  ASSERT_EQ(out, shadow);
}

TEST(Integration, SimulatedCostOrderingHoldsAcrossSeeds) {
  // Property over 5 seeds: on mixed workloads the well-balanced codes
  // (xcode, hdp) cost more I/O than dcode, which stays within a few
  // percent of rdp/hcode (paper §IV-C summary).
  for (uint64_t seed = 100; seed < 105; ++seed) {
    auto cost = [&](const char* name) {
      auto l = make_layout(name, 11);
      return sim::run_load_experiment(*l, sim::WorkloadKind::kMixed, seed,
                                      false, 300)
          .io_cost;
    };
    int64_t dc = cost("dcode");
    EXPECT_LT(dc, cost("xcode")) << "seed " << seed;
    EXPECT_LT(dc, cost("hdp")) << "seed " << seed;
    double rdp = static_cast<double>(cost("rdp"));
    EXPECT_LT(std::abs(static_cast<double>(dc) - rdp) / rdp, 0.12)
        << "seed " << seed;
  }
}

TEST(Integration, RsCodecProtectsSameDataAsArrayCodes) {
  // Sanity bridge between the two codec families: encode the same disks'
  // worth of data with the RAID-6 P/Q codec and with D-Code, break two
  // devices in each, and verify both recover the identical payload.
  const int k = 5;
  const size_t size = 1024;
  Pcg32 rng(4);

  std::vector<std::vector<uint8_t>> data(k, std::vector<uint8_t>(size));
  for (auto& d : data) rng.fill_bytes(d.data(), size);

  // RS path.
  rs::Raid6PqCodec pq(k);
  std::vector<uint8_t> p(size), q(size);
  std::vector<const uint8_t*> dc;
  std::vector<uint8_t*> dm;
  for (auto& d : data) {
    dc.push_back(d.data());
    dm.push_back(d.data());
  }
  pq.encode(dc, p.data(), q.data(), size);
  auto d0 = data[0], d3 = data[3];
  std::fill(data[0].begin(), data[0].end(), 0);
  std::fill(data[3].begin(), data[3].end(), 0);
  std::vector<int> erased = {0, 3};
  pq.decode(dm, p.data(), q.data(), erased, size);
  EXPECT_EQ(data[0], d0);
  EXPECT_EQ(data[3], d3);
}

TEST(Integration, ExperimentDriversAreDeterministic) {
  auto l = make_layout("dcode", 7);
  auto a = sim::run_load_experiment(*l, sim::WorkloadKind::kMixed, 9, false,
                                    100);
  auto b = sim::run_load_experiment(*l, sim::WorkloadKind::kMixed, 9, false,
                                    100);
  EXPECT_EQ(a.io_cost, b.io_cost);
  EXPECT_EQ(a.load_balancing_factor, b.load_balancing_factor);

  sim::DiskModelParams params;
  auto s1 = sim::run_normal_read_experiment(*l, 9, params, 100);
  auto s2 = sim::run_normal_read_experiment(*l, 9, params, 100);
  EXPECT_DOUBLE_EQ(s1.read_mb_s, s2.read_mb_s);
}

}  // namespace
}  // namespace dcode

// The end-to-end integrity channel: XXH64 kernel correctness (pinned
// spec vectors + cross-ISA differential), ChecksumStore classification
// and sidecar persistence (dual-slot torn-write recovery), the
// wrong-path write fault models, verify-on-read serving correct data
// from parity, and the scrub contracts only the checksum channel can
// honor — repairing family-disagreement stripes parity-only scrub must
// refuse, localizing through degraded stripes, and reporting
// parity-consistent whole-stripe stale writes.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <tuple>
#include <vector>

#include "codes/registry.h"
#include "raid/fault_injection.h"
#include "raid/integrity.h"
#include "raid/journal.h"
#include "raid/mem_disk.h"
#include "raid/raid6_array.h"
#include "util/rng.h"
#include "xorops/checksum.h"

namespace dcode::raid {
namespace {

constexpr size_t kElem = 256;
constexpr int64_t kStripes = 4;

std::vector<uint8_t> random_blob(Pcg32& rng, size_t n) {
  std::vector<uint8_t> v(n);
  rng.fill_bytes(v.data(), n);
  return v;
}

uint64_t element_device_offset(int64_t stripe, int row, int rows) {
  return (static_cast<uint64_t>(stripe) * static_cast<uint64_t>(rows) +
          static_cast<uint64_t>(row)) *
         kElem;
}

std::string fresh_dir(const char* tag) {
  std::string tmpl = ::testing::TempDir() + "dcode_integrity_" + tag +
                     "_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  EXPECT_NE(mkdtemp(buf.data()), nullptr);
  return std::string(buf.data());
}

// --- the checksum kernel ---------------------------------------------------

TEST(Checksum, MatchesPublishedXxh64Vectors) {
  // Reference vectors from the published xxHash spec: the sidecar format
  // promises stock-tool auditability, so these are pinned, not golden.
  EXPECT_EQ(xorops::checksum64("", 0), 0xEF46DB3751D8E999ULL);
  EXPECT_EQ(xorops::checksum64("abc", 3), 0x44BC2CF5AD770999ULL);
  // Seed changes the value (the sidecar seeds slots by element index).
  EXPECT_NE(xorops::checksum64("abc", 3, 1), xorops::checksum64("abc", 3));
}

TEST(Checksum, EveryIsaBackendBitIdenticalToScalar) {
  Pcg32 rng(7);
  // Lengths cover: empty, sub-tail, every block-loop remainder class
  // around the 32-byte accumulate, and a large buffer.
  for (size_t len : {size_t{0}, size_t{1}, size_t{7}, size_t{31}, size_t{32},
                     size_t{33}, size_t{63}, size_t{64}, size_t{65},
                     size_t{255}, size_t{256}, size_t{4096}, size_t{4099}}) {
    std::vector<uint8_t> data = random_blob(rng, len);
    const uint64_t want =
        xorops::checksum64_isa(xorops::Isa::kScalar, data.data(), len, 42);
    for (xorops::Isa isa : xorops::supported_isas()) {
      EXPECT_EQ(xorops::checksum64_isa(isa, data.data(), len, 42), want)
          << "isa " << xorops::isa_name(isa) << " len " << len;
    }
    EXPECT_EQ(xorops::checksum64(data.data(), len, 42), want) << len;
  }
}

// --- write-identity tags ---------------------------------------------------

TEST(IdentityTag, PacksAndUnpacksEveryField) {
  const uint64_t tag = make_tag(/*generation=*/3, /*stripe=*/0xABCDE,
                                /*row=*/0x5F, /*role=*/2);
  EXPECT_EQ(tag_generation(tag), 3u);
  EXPECT_EQ(tag_stripe(tag), 0xABCDE);
  EXPECT_EQ(tag_row(tag), 0x5F);
  EXPECT_EQ(tag_role(tag), 2);
  // Generation starts at 1, so a zero tag always means "untracked".
  EXPECT_NE(make_tag(1, 0, 0, 0), 0u);
}

// --- ChecksumStore classification ------------------------------------------

TEST(ChecksumStore, ClassifiesEveryVerdict) {
  ChecksumStore store(8);
  const uint64_t a1 = 111, a2 = 222, b1 = 333;

  EXPECT_EQ(store.classify(0, a1), IntegrityVerdict::kUntracked);

  store.record(0, a1, /*stripe=*/0, /*row=*/0, /*role=*/0);
  store.record(1, b1, /*stripe=*/0, /*row=*/1, /*role=*/0);
  EXPECT_EQ(store.classify(0, a1), IntegrityVerdict::kOk);

  store.record(0, a2, 0, 0, 0);  // second write: a1 becomes prev
  EXPECT_EQ(store.classify(0, a2), IntegrityVerdict::kOk);
  EXPECT_EQ(store.classify(0, a1), IntegrityVerdict::kStale);
  EXPECT_EQ(store.classify(0, b1), IntegrityVerdict::kMisdirected);
  EXPECT_EQ(store.classify(0, 999), IntegrityVerdict::kCorrupt);

  const ChecksumStore::Snapshot s = store.load(0);
  EXPECT_EQ(s.sum, a2);
  EXPECT_EQ(s.prev, a1);
  EXPECT_EQ(tag_generation(s.tag), 2u);
}

TEST(ChecksumStore, ResyncClearsStaleHistory) {
  ChecksumStore store(4);
  store.record(2, 10, 1, 2, 0);
  store.record(2, 20, 1, 2, 0);
  EXPECT_EQ(store.classify(2, 10), IntegrityVerdict::kStale);
  // Reconstruction re-derives the record; the previous payload is
  // unknowable, so stale detection restarts instead of false-positiving.
  store.resync(2, 20, 1, 2, 0);
  EXPECT_EQ(store.classify(2, 10), IntegrityVerdict::kCorrupt);
  EXPECT_EQ(store.classify(2, 20), IntegrityVerdict::kOk);
  EXPECT_EQ(store.load(2).prev, 0u);

  store.invalidate_all();
  EXPECT_EQ(store.classify(2, 20), IntegrityVerdict::kUntracked);
}

// --- sidecar persistence ---------------------------------------------------

TEST(ChecksumStoreSidecar, SurvivesReopenBitIdentical) {
  const std::string dir = fresh_dir("reopen");
  const std::string path = dir + "/disk0.sum";
  {
    ChecksumStore store(16);
    store.attach_file(path);
    EXPECT_TRUE(store.persistent());
    store.record(3, 0xAAA, 0, 3, 0);
    store.record(3, 0xBBB, 0, 3, 0);
    store.record(7, 0xCCC, 1, 1, 1);
    store.flush();
  }
  ChecksumStore reopened(16);
  reopened.attach_file(path);
  EXPECT_EQ(reopened.load(3).sum, 0xBBBULL);
  EXPECT_EQ(reopened.load(3).prev, 0xAAAULL);
  EXPECT_EQ(tag_generation(reopened.load(3).tag), 2u);
  EXPECT_EQ(reopened.load(7).sum, 0xCCCULL);
  EXPECT_EQ(tag_role(reopened.load(7).tag), 1);
  EXPECT_FALSE(reopened.load(0).tracked());
}

TEST(ChecksumStoreSidecar, TornSlotFallsBackToOtherSlot) {
  const std::string dir = fresh_dir("torn");
  const std::string path = dir + "/disk0.sum";
  {
    ChecksumStore store(4);
    store.attach_file(path);
    store.record(1, 0x11, 0, 1, 0);  // state A
    store.record(1, 0x22, 0, 1, 0);  // state B (other slot)
    store.flush();
  }
  // Tear one slot: whatever state it held, the loader must fall back to
  // the other slot's valid record — never garbage, never untracked.
  for (int torn = 0; torn < 2; ++torn) {
    std::string copy = dir + "/torn" + std::to_string(torn) + ".sum";
    {
      std::vector<uint8_t> raw;
      int fd = open(path.c_str(), O_RDONLY);
      ASSERT_GE(fd, 0);
      const off_t len = lseek(fd, 0, SEEK_END);
      raw.resize(static_cast<size_t>(len));
      ASSERT_TRUE(detail::pread_fully(fd, raw.data(), raw.size(), 0));
      close(fd);
      // Scribble over half the slot — a torn sidecar write.
      const int64_t at = ChecksumStore::slot_offset(1, torn);
      for (size_t i = 0; i < ChecksumStore::kSlotBytes / 2; ++i) {
        raw[static_cast<size_t>(at) + i] ^= 0x5A;
      }
      fd = open(copy.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      ASSERT_GE(fd, 0);
      ASSERT_TRUE(detail::pwrite_fully(fd, raw.data(), raw.size(), 0));
      close(fd);
    }
    ChecksumStore reopened(4);
    reopened.attach_file(copy);
    const ChecksumStore::Snapshot s = reopened.load(1);
    EXPECT_TRUE(s.tracked()) << "torn slot " << torn;
    EXPECT_TRUE(s.sum == 0x11 || s.sum == 0x22) << "torn slot " << torn;
  }
  // Both slots torn: the element degrades to untracked, never garbage.
  {
    std::vector<uint8_t> raw;
    int fd = open(path.c_str(), O_RDWR);
    ASSERT_GE(fd, 0);
    for (int slot = 0; slot < 2; ++slot) {
      std::vector<uint8_t> junk(ChecksumStore::kSlotBytes, 0x7E);
      ASSERT_TRUE(detail::pwrite_fully(fd, junk.data(), junk.size(),
                                       ChecksumStore::slot_offset(1, slot)));
    }
    close(fd);
    ChecksumStore reopened(4);
    reopened.attach_file(path);
    EXPECT_FALSE(reopened.load(1).tracked());
    EXPECT_TRUE(reopened.load(1).sum == 0);
  }
}

TEST(ChecksumStoreSidecar, PreadPwriteFullyHandleShortCounts) {
  const std::string dir = fresh_dir("shortio");
  const std::string path = dir + "/f";
  int fd = open(path.c_str(), O_RDWR | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  std::vector<uint8_t> data(10, 0xAB);
  EXPECT_TRUE(detail::pwrite_fully(fd, data.data(), data.size(), 0));
  std::vector<uint8_t> back(10, 0);
  EXPECT_TRUE(detail::pread_fully(fd, back.data(), back.size(), 0));
  EXPECT_EQ(back, data);
  // EOF before n bytes: must report failure, not return short.
  std::vector<uint8_t> big(20);
  EXPECT_FALSE(detail::pread_fully(fd, big.data(), big.size(), 0));
  EXPECT_FALSE(detail::pread_fully(fd, back.data(), back.size(), 5));
  // Bad fd: clean failure on both paths.
  close(fd);
  EXPECT_FALSE(detail::pwrite_fully(fd, data.data(), data.size(), 0));
  EXPECT_FALSE(detail::pread_fully(fd, back.data(), back.size(), 0));
}

TEST(ChecksumStoreSidecar, ArraySidecarRecordsDeviceContent) {
  const std::string dir = fresh_dir("array");
  ArrayOptions opts;
  opts.integrity_sidecar_dir = dir;
  auto layout = codes::make_layout("dcode", 5);
  const int rows = layout->rows();
  Raid6Array array(std::move(layout), kElem, kStripes, 2, nullptr, opts);
  Pcg32 rng(31);
  auto blob = random_blob(rng, static_cast<size_t>(array.capacity()));
  array.write(0, blob);
  array.flush();

  // The persisted record for (disk 2, stripe 1, row 0) must hash exactly
  // the bytes the device holds there.
  std::vector<uint8_t> elem(kElem);
  array.disk(2).read(element_device_offset(1, 0, rows), elem);
  const uint64_t want = xorops::checksum64(elem.data(), elem.size());

  ChecksumStore reopened(kStripes * rows);
  reopened.attach_file(dir + "/disk2.sum");
  const auto snap = reopened.load(1 * rows + 0);
  EXPECT_EQ(snap.sum, want);
  EXPECT_EQ(tag_stripe(snap.tag), 1);
  EXPECT_EQ(tag_row(snap.tag), 0);
}

// --- wrong-path write fault models -----------------------------------------

TEST(WrongPathWrites, LostTornMisdirectedSemantics) {
  FaultInjectingDevice dev(std::make_unique<MemDisk>(0, 4096));
  std::vector<uint8_t> zero(4096, 0);
  ASSERT_TRUE(dev.write(0, zero).ok());

  std::vector<uint8_t> payload(256, 0xCD);
  std::vector<uint8_t> back(256);

  // Lost: acknowledged in full, nothing lands.
  dev.inject_lost_writes(1);
  EXPECT_EQ(dev.pending_wrong_path_writes(), 1);
  IoResult r = dev.write(512, payload);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.bytes, payload.size());
  EXPECT_EQ(dev.pending_wrong_path_writes(), 0);
  ASSERT_TRUE(dev.read(512, back).ok());
  EXPECT_EQ(back, std::vector<uint8_t>(256, 0));

  // Torn: acknowledged in full, only the prefix persists.
  dev.inject_torn_writes(1, 10);
  ASSERT_TRUE(dev.write(512, payload).ok());
  ASSERT_TRUE(dev.read(512, back).ok());
  EXPECT_EQ(std::vector<uint8_t>(back.begin(), back.begin() + 10),
            std::vector<uint8_t>(10, 0xCD));
  EXPECT_EQ(std::vector<uint8_t>(back.begin() + 10, back.end()),
            std::vector<uint8_t>(246, 0));

  // Misdirected: acknowledged in full, lands offset_delta away.
  dev.inject_misdirected_writes(1, 1024);
  ASSERT_TRUE(dev.write(0, payload).ok());
  ASSERT_TRUE(dev.read(0, back).ok());
  EXPECT_EQ(back, std::vector<uint8_t>(256, 0)) << "target untouched";
  ASSERT_TRUE(dev.read(1024, back).ok());
  EXPECT_EQ(back, payload) << "payload landed at the slipped offset";

  // Disarm clears every family; the next write lands normally.
  dev.inject_lost_writes(2);
  dev.inject_torn_writes(2, 1);
  dev.inject_misdirected_writes(2, 512);
  EXPECT_EQ(dev.pending_wrong_path_writes(), 6);
  dev.clear_wrong_path_writes();
  EXPECT_EQ(dev.pending_wrong_path_writes(), 0);
  ASSERT_TRUE(dev.write(2048, payload).ok());
  ASSERT_TRUE(dev.read(2048, back).ok());
  EXPECT_EQ(back, payload);
}

// --- verify-on-read: correct data from parity ------------------------------

// One array + shadow; arms one wrong-path family on one disk, rewrites
// stripe 0 through the array (the armed disk's coalesced run goes wrong
// while being acknowledged), then proves reads still return the intended
// bytes, the expected verdict kind was counted, and repair scrub
// converges. `expected_kind` may be empty when the verdict depends on
// where the payload lands (misdirected writes clobber parity rows too).
void run_wrong_path_family(
    const std::function<void(FaultInjectingDevice&)>& arm,
    const std::string& expected_kind) {
  obs::Registry reg;
  auto layout = codes::make_layout("dcode", 5);
  Raid6Array array(std::move(layout), kElem, kStripes, 2, &reg);
  Pcg32 rng(61);
  auto shadow = random_blob(rng, static_cast<size_t>(array.capacity()));
  array.write(0, shadow);
  ASSERT_EQ(array.scrub(), 0);

  const int victim = 2;
  arm(array.disk(victim).faults());
  // Full-stripe rewrite of stripe 0: every disk takes one coalesced run;
  // the victim's run is acknowledged but wrong.
  const size_t stripe_bytes =
      static_cast<size_t>(array.capacity() / kStripes);
  auto fresh = random_blob(rng, stripe_bytes);
  array.write(0, fresh);
  std::memcpy(shadow.data(), fresh.data(), fresh.size());
  ASSERT_EQ(array.disk(victim).faults().pending_wrong_path_writes(), 0)
      << "the armed fault must have been consumed";

  // Reads detect the lie through the checksum channel and serve the
  // correct bytes from parity.
  std::vector<uint8_t> out(shadow.size());
  array.read(0, out);
  EXPECT_EQ(out, shadow);
  EXPECT_GT(reg.counter("raid.integrity.read_fallbacks").value(), 0);
  EXPECT_GT(reg.counter("raid.integrity.elements_verified").value(), 0);
  if (!expected_kind.empty()) {
    EXPECT_GT(reg.counter("raid.integrity.read_mismatches",
                          {{"kind", expected_kind}})
                  .value(),
              0)
        << expected_kind;
  }

  // Repair scrub makes the damage durable-good again.
  ScrubReport rep = array.scrub_report({.repair = true});
  EXPECT_EQ(rep.stripes_unrepairable, 0);
  EXPECT_GT(rep.checksum_mismatches, 0);
  EXPECT_GT(rep.elements_checksum_located, 0);
  EXPECT_EQ(array.scrub(), 0);
  std::vector<uint8_t> after(shadow.size());
  array.read(0, after);
  EXPECT_EQ(after, shadow);
}

TEST(VerifyOnRead, LostWriteServedFromParityAndRepaired) {
  // A lost write leaves the platter serving the element's previous
  // payload — the stale verdict by construction.
  run_wrong_path_family(
      [](FaultInjectingDevice& f) { f.inject_lost_writes(1); }, "stale");
}

TEST(VerifyOnRead, TornWriteServedFromParityAndRepaired) {
  // A torn run persists a 7-byte prefix: the first element of the run
  // hashes to nothing known (corrupt), the rest reads stale. Which one a
  // data read condemns first depends on the rotation layout, so only the
  // aggregate is asserted (the per-verdict mapping is pinned by the
  // ChecksumStore unit tests).
  run_wrong_path_family(
      [](FaultInjectingDevice& f) { f.inject_torn_writes(1, 7); }, "");
}

TEST(VerifyOnRead, MisdirectedWriteServedFromParityAndRepaired) {
  // A whole-stripe LBA slip (dcode p5 has 4 rows): the victim's stripe-0
  // run lands in stripe-1 territory, so the intended elements read stale
  // and the clobbered elements hold foreign content. A same-stripe slip
  // would be condemned already at the RMW parity pre-read and salvaged
  // inside write() — the stripe-crossing slip is the shape that survives
  // to be caught by verify-on-read. Which kind a data read observes
  // first depends on the rotation layout, so only the aggregate is
  // asserted.
  run_wrong_path_family(
      [](FaultInjectingDevice& f) {
        f.inject_misdirected_writes(1, static_cast<uint64_t>(4 * kElem));
      },
      "");
}

TEST(VerifyOnRead, SameStripeMisdirectSalvagedAtWriteTime) {
  // A one-element slip clobbers the victim's own parity row, so the RMW
  // parity pre-read condemns the column mid-update — new data on the
  // healthy columns, pre-update parity everywhere — and the in-place
  // repair cannot converge. write() must escalate to the salvage
  // rewrite: the write succeeds and leaves the stripe clean without any
  // later scrub.
  obs::Registry reg;
  auto layout = codes::make_layout("dcode", 5);
  Raid6Array array(std::move(layout), kElem, kStripes, 2, &reg);
  Pcg32 rng(62);
  auto shadow = random_blob(rng, static_cast<size_t>(array.capacity()));
  array.write(0, shadow);
  ASSERT_EQ(array.scrub(), 0);

  const int victim = 2;
  array.disk(victim).faults().inject_misdirected_writes(
      1, static_cast<uint64_t>(kElem));
  const size_t stripe_bytes = static_cast<size_t>(array.capacity() / kStripes);
  auto fresh = random_blob(rng, stripe_bytes);
  array.write(0, fresh);
  std::memcpy(shadow.data(), fresh.data(), fresh.size());

  EXPECT_GT(reg.counter("raid.integrity.write_repairs").value(), 0);
  EXPECT_EQ(array.scrub(), 0);
  std::vector<uint8_t> out(shadow.size());
  array.read(0, out);
  EXPECT_EQ(out, shadow);
}

// --- checksum-assisted scrub: beyond the parity-only contracts -------------

// The regression the tentpole exists for: two corrupt elements in one
// stripe make the parity families disagree, so parity-only repair must
// refuse (scrub_repair_test pins that) — and the checksum channel then
// localizes both and repairs byte-identically.
TEST(ChecksumScrub, RepairsFamilyDisagreementParityOnlyRefuses) {
  auto lay = codes::make_layout("dcode", 7);
  const int rows = lay->rows();
  obs::Registry reg;
  Raid6Array array(std::move(lay), kElem, kStripes, 2, &reg);
  Pcg32 rng(25);
  auto blob = random_blob(rng, static_cast<size_t>(array.capacity()));
  array.write(0, blob);

  for (const auto& [disk, row, nbytes] :
       {std::tuple{0, 0, kElem / 4}, std::tuple{2, 1, kElem / 2}}) {
    std::vector<uint8_t> buf(nbytes);
    array.disk(disk).read(element_device_offset(1, row, rows), buf);
    for (auto& b : buf) b ^= 0xA5;
    array.disk(disk).write(element_device_offset(1, row, rows), buf);
  }

  // Parity-only: detected, unrepairable, correctly attributed.
  ScrubReport parity_only =
      array.scrub_report({.repair = true, .use_checksums = false});
  EXPECT_EQ(parity_only.inconsistent_stripes, std::vector<int64_t>({1}));
  EXPECT_EQ(parity_only.stripes_unrepairable, 1);
  EXPECT_EQ(parity_only.stripes_family_disagreement, 1);
  EXPECT_EQ(parity_only.elements_repaired, 0);

  // Checksum-assisted: both elements condemned by their sidecar records,
  // reconstructed from surviving equations, re-verified, byte-identical.
  ScrubReport assisted = array.scrub_report({.repair = true});
  EXPECT_EQ(assisted.inconsistent_stripes, std::vector<int64_t>({1}));
  EXPECT_EQ(assisted.stripes_unrepairable, 0);
  EXPECT_EQ(assisted.checksum_mismatches, 2);
  EXPECT_EQ(assisted.elements_checksum_located, 2);
  EXPECT_EQ(assisted.elements_repaired, 2);
  EXPECT_EQ(array.scrub(), 0);
  EXPECT_GT(reg.counter("raid.scrub.checksum_located").value(), 0);

  std::vector<uint8_t> out(static_cast<size_t>(array.capacity()));
  array.read(0, out);
  EXPECT_EQ(out, blob);
}

// The checksum channel localizes through a degraded stripe, where the
// parity-only membership comparison is unsound (dead-disk equations).
TEST(ChecksumScrub, LocalizesThroughDegradedStripe) {
  auto lay = codes::make_layout("dcode", 7);
  const int rows = lay->rows();
  Raid6Array array(std::move(lay), kElem, kStripes, 2);
  Pcg32 rng(24);
  auto blob = random_blob(rng, static_cast<size_t>(array.capacity()));
  array.write(0, blob);

  std::vector<uint8_t> buf(16);
  array.disk(1).read(element_device_offset(0, 0, rows), buf);
  for (auto& b : buf) b ^= 0xA5;
  array.disk(1).write(element_device_offset(0, 0, rows), buf);
  array.fail_disk(5);  // no spares: stays degraded

  ScrubReport rep = array.scrub_report({.repair = true});
  EXPECT_EQ(rep.stripes_unrepairable, 0);
  EXPECT_GT(rep.elements_checksum_located, 0);
  EXPECT_EQ(array.scrub(), 0);
}

// A whole-stripe lost write — every element rolled back together — is
// parity-consistent and unrecoverable from redundancy; the identity tags
// are the only witness. Reported as stale, never counted inconsistent;
// repair mode resyncs the sidecar so reads stop condemning bytes nothing
// can improve.
TEST(ChecksumScrub, WholeStripeStaleReportedNotRepaired) {
  obs::Registry reg;
  auto layout = codes::make_layout("dcode", 5);
  const int rows = layout->rows();
  const int disks = layout->cols();
  Raid6Array array(std::move(layout), kElem, kStripes, 2, &reg);
  Pcg32 rng(77);
  auto blob = random_blob(rng, static_cast<size_t>(array.capacity()));
  array.write(0, blob);
  ASSERT_EQ(array.scrub(), 0);

  // Snapshot stripe 2 on every device, rewrite it through the array,
  // then roll every device back — the classic array-wide lost write.
  const int64_t stripe = 2;
  const uint64_t dev_off = element_device_offset(stripe, 0, rows);
  const size_t dev_len = static_cast<size_t>(rows) * kElem;
  std::vector<std::vector<uint8_t>> before(static_cast<size_t>(disks));
  for (int d = 0; d < disks; ++d) {
    before[static_cast<size_t>(d)].resize(dev_len);
    array.disk(d).read(dev_off, before[static_cast<size_t>(d)]);
  }
  const int64_t stripe_bytes = array.capacity() / kStripes;
  auto fresh = random_blob(rng, static_cast<size_t>(stripe_bytes));
  array.write(stripe * stripe_bytes, fresh);
  for (int d = 0; d < disks; ++d) {
    array.disk(d).write(dev_off, before[static_cast<size_t>(d)]);
  }

  // Detect: parity consistent, stale, NOT inconsistent.
  ScrubReport detect = array.scrub_report();
  EXPECT_TRUE(detect.inconsistent_stripes.empty());
  EXPECT_EQ(detect.stale_stripes, std::vector<int64_t>({stripe}));
  EXPECT_GT(detect.elements_stale, 0);
  EXPECT_EQ(detect.stripes_unrepairable, 0);

  // Repair: content is unimprovable; the sidecar is resynced so the
  // stripe reads cleanly again (serving the rolled-back bytes).
  ScrubReport repair = array.scrub_report({.repair = true});
  EXPECT_EQ(repair.stale_stripes, std::vector<int64_t>({stripe}));
  EXPECT_EQ(array.scrub(), 0);
  EXPECT_GT(reg.counter("raid.scrub.stripes_stale").value(), 0);
  ScrubReport after = array.scrub_report();
  EXPECT_TRUE(after.stale_stripes.empty());

  std::vector<uint8_t> out(static_cast<size_t>(stripe_bytes));
  array.read(stripe * stripe_bytes, out);  // must not throw post-resync
  EXPECT_EQ(out, std::vector<uint8_t>(
                     blob.begin() + stripe * stripe_bytes,
                     blob.begin() + (stripe + 1) * stripe_bytes));
}

// --- crash consistency: sidecar vs journal ---------------------------------

// A crash between element writes leaves sidecar records ahead of (or
// behind) the platter. Journal replay reads raw, re-encodes parity, and
// resyncs every live element's record — so verified reads work again
// without a single false condemnation surviving recovery.
TEST(ChecksumScrub, JournalRecoveryResyncsSidecarAfterCrash) {
  obs::Registry reg;
  auto layout = codes::make_layout("dcode", 5);
  Raid6Array array(std::move(layout), kElem, kStripes, 2, &reg);
  array.enable_journal(16);
  Pcg32 rng(91);
  auto blob = random_blob(rng, static_cast<size_t>(array.capacity()));
  array.write(0, blob);
  ASSERT_EQ(array.scrub(), 0);

  const int64_t stripe_bytes = array.capacity() / kStripes;
  auto fresh = random_blob(rng, static_cast<size_t>(2 * stripe_bytes));
  array.inject_power_loss_after(3);  // dies mid-update
  EXPECT_THROW(array.write(stripe_bytes, fresh), PowerLossError);

  array.restart();
  ASSERT_FALSE(array.journal_open_stripes().empty());
  array.journal_recover();
  EXPECT_TRUE(array.journal_open_stripes().empty());

  // Replay made stripes parity-consistent AND resynced their sidecar
  // records: repair scrub has nothing unrepairable, and a verified read
  // of the whole array does not throw.
  ScrubReport rep = array.scrub_report({.repair = true});
  EXPECT_EQ(rep.stripes_unrepairable, 0);
  EXPECT_EQ(array.scrub(), 0);
  std::vector<uint8_t> out(static_cast<size_t>(array.capacity()));
  EXPECT_NO_THROW(array.read(0, out));
}

}  // namespace
}  // namespace dcode::raid

// Time-bounded randomized round-trip fuzzing at the stripe level: for a
// random (code, prime, element size, failure set), assert that decoding
// an encoded stripe with erased disks reproduces it bit-for-bit. Element
// sizes deliberately include odd and sub-word values so the XOR kernels'
// tail paths run under the sanitizers, not just the aligned fast paths.
//
// The wall-clock budget comes from DCODE_FUZZ_MS (default 2000) so the
// target stays cheap in CI but can be cranked up for soak runs;
// DCODE_FUZZ_SEED varies the sequence.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "codes/decoder.h"
#include "codes/encoder.h"
#include "codes/registry.h"
#include "codes/stripe.h"
#include "util/rng.h"

namespace dcode::codes {
namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

TEST(FuzzRoundtrip, DecodeOfEncodeIsIdentity) {
  const int budget_ms = env_int("DCODE_FUZZ_MS", 2000);
  const uint64_t seed = static_cast<uint64_t>(env_int("DCODE_FUZZ_SEED", 1));
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(budget_ms);

  Pcg32 rng(seed);
  const std::vector<std::string>& names = all_code_names();
  const int primes[] = {5, 7, 11, 13};

  int iterations = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    const std::string& name =
        names[rng.next_below(static_cast<uint32_t>(names.size()))];
    const int p = primes[rng.next_below(4)];
    auto layout = make_layout(name, p);

    const size_t element_size = 1 + rng.next_below(256);
    Stripe stripe(*layout, element_size);
    stripe.randomize_data(rng);
    encode_stripe(stripe);

    // Erase up to fault_tolerance() distinct disks (at least one).
    const int max_faults = layout->fault_tolerance();
    const int faults = 1 + static_cast<int>(rng.next_below(
                               static_cast<uint32_t>(max_faults)));
    std::vector<int> failed;
    while (static_cast<int>(failed.size()) < faults) {
      int d = static_cast<int>(
          rng.next_below(static_cast<uint32_t>(layout->cols())));
      if (std::find(failed.begin(), failed.end(), d) == failed.end()) {
        failed.push_back(d);
      }
    }

    Stripe broken = stripe.clone();
    for (int d : failed) broken.erase_disk(d);

    auto lost = elements_of_disks(*layout, failed);
    auto res = hybrid_decode(broken, lost);
    std::string what = name + " p=" + std::to_string(p) +
                       " esize=" + std::to_string(element_size) + " failed={";
    for (int d : failed) what += std::to_string(d) + ",";
    what += "} iter=" + std::to_string(iterations) +
            " seed=" + std::to_string(seed);
    ASSERT_TRUE(res.success) << "decode failed: " << what;
    ASSERT_TRUE(broken.equals(stripe)) << "round-trip mismatch: " << what;
    ++iterations;
  }
  RecordProperty("iterations", iterations);
  EXPECT_GT(iterations, 0) << "budget too small to run a single iteration";
}

}  // namespace
}  // namespace dcode::codes

// Span causality: the JSONL trace an operation emits must reconstruct
// exactly the element accesses the planner predicted for it.
//
// The chain under test is OpContext -> array span -> engine span ->
// device-leaf events: the array's OpGuard opens a root span, the engine
// parents its batch spans under it (across pool threads, via the
// explicit-parent Span constructor), and every coalesced device run
// emits a disk.read/disk.write leaf with {disk, offset, elements}.
// Expanding the leaves back into per-element accesses and comparing
// against the IoPlan proves the tree attributes every device touch to
// the right user op — the property the flight recorder and the load
// harness both lean on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "codes/registry.h"
#include "obs/trace.h"
#include "raid/pipeline.h"
#include "raid/planner.h"
#include "raid/raid6_array.h"
#include "util/rng.h"

namespace dcode::raid {
namespace {

constexpr size_t kElem = 64;

std::vector<uint8_t> random_bytes(size_t n, uint64_t seed) {
  std::vector<uint8_t> buf(n);
  Pcg32 rng(seed);
  rng.fill_bytes(buf.data(), buf.size());
  return buf;
}

// --- minimal JSONL field extraction ----------------------------------------
// The trace writer emits flat, known shapes (attrs keys never collide
// with envelope keys), so keyword search is enough — no JSON parser.

bool extract_int(const std::string& line, const std::string& key,
                 int64_t* out) {
  const std::string needle = "\"" + key + "\":";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::stoll(line.substr(pos + needle.size()));
  return true;
}

bool extract_string(const std::string& line, const std::string& key,
                    std::string* out) {
  const std::string needle = "\"" + key + "\":\"";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  pos += needle.size();
  size_t end = line.find('"', pos);
  if (end == std::string::npos) return false;
  *out = line.substr(pos, end - pos);
  return true;
}

// One element-granular device access recovered from the trace (or
// predicted by the planner). Sorted-vector comparison = multiset
// equality.
struct DeviceAccess {
  int64_t disk;
  int64_t offset;
  bool is_write;

  auto operator<=>(const DeviceAccess&) const = default;
};

struct ParsedTrace {
  std::map<uint64_t, uint64_t> parent_of;   // span id -> parent id
  std::map<uint64_t, std::string> name_of;  // span id -> name
  std::vector<uint64_t> roots;              // parent == 0
  // disk.read / disk.write leaves, expanded to one entry per element.
  std::vector<std::pair<uint64_t, DeviceAccess>> leaves;  // (span, access)
};

// Walks up the parent chain; true when `span` is (a descendant of) root.
bool under(const ParsedTrace& t, uint64_t span, uint64_t root) {
  for (int hops = 0; span != 0 && hops < 64; ++hops) {
    if (span == root) return true;
    auto it = t.parent_of.find(span);
    if (it == t.parent_of.end()) return false;
    span = it->second;
  }
  return false;
}

// The planner's prediction in device-access coordinates: disk d, byte
// offset (stripe * rows + row) * esize.
std::vector<DeviceAccess> predicted(const IoPlan& plan, int rows,
                                    size_t esize) {
  std::vector<DeviceAccess> out;
  out.reserve(plan.accesses.size());
  for (const auto& a : plan.accesses) {
    out.push_back(DeviceAccess{
        a.disk,
        (a.stripe * rows + a.element.row) * static_cast<int64_t>(esize),
        a.is_write});
  }
  std::sort(out.begin(), out.end());
  return out;
}

class OpTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    array_ = std::make_unique<Raid6Array>(codes::make_layout("dcode", 7),
                                          kElem, /*stripes=*/4, /*threads=*/2,
                                          &registry_);
    auto data = random_bytes(static_cast<size_t>(array_->capacity()), 42);
    array_->write(0, data);
  }

  void TearDown() override { obs::TraceLog::global().close(); }

  void parse_trace_into(const std::string& text, ParsedTrace* out) {
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
      std::string type;
      if (!extract_string(line, "type", &type)) continue;
      if (type == "span_begin") {
        int64_t id = 0, parent = 0;
        std::string name;
        ASSERT_TRUE(extract_int(line, "id", &id)) << line;
        extract_int(line, "parent", &parent);
        extract_string(line, "name", &name);
        out->parent_of[static_cast<uint64_t>(id)] =
            static_cast<uint64_t>(parent);
        out->name_of[static_cast<uint64_t>(id)] = name;
        if (parent == 0) out->roots.push_back(static_cast<uint64_t>(id));
      } else if (type == "event") {
        std::string name;
        if (!extract_string(line, "name", &name)) continue;
        if (name != "disk.read" && name != "disk.write") continue;
        int64_t span = 0, disk = 0, offset = 0, elements = 0;
        ASSERT_TRUE(extract_int(line, "span", &span)) << line;
        ASSERT_TRUE(extract_int(line, "disk", &disk)) << line;
        ASSERT_TRUE(extract_int(line, "offset", &offset)) << line;
        ASSERT_TRUE(extract_int(line, "elements", &elements)) << line;
        for (int64_t k = 0; k < elements; ++k) {
          out->leaves.emplace_back(
              static_cast<uint64_t>(span),
              DeviceAccess{disk, offset + k * static_cast<int64_t>(kElem),
                           name == "disk.write"});
        }
      }
    }
  }

  // Traces `op`, finds the unique root span named `root_name`, and
  // returns the element accesses of every device leaf under it, sorted.
  template <typename OpFn>
  std::vector<DeviceAccess> run_traced(const std::string& root_name, OpFn op) {
    std::ostringstream trace;
    obs::TraceLog::global().attach(&trace);
    op();
    obs::TraceLog::global().close();

    ParsedTrace t;
    parse_trace_into(trace.str(), &t);

    uint64_t root = 0;
    int matching_roots = 0;
    for (uint64_t r : t.roots) {
      if (t.name_of[r] == root_name) {
        root = r;
        ++matching_roots;
      }
    }
    EXPECT_EQ(matching_roots, 1)
        << "expected exactly one " << root_name << " root span";
    // Every engine span must parent directly under the op's root: the
    // causal tree has no orphaned middle layer.
    for (const auto& [id, name] : t.name_of) {
      if (name == "engine.read_batch" || name == "engine.write_batch") {
        EXPECT_TRUE(under(t, id, root))
            << name << " span " << id << " not under the op root";
      }
    }

    std::vector<DeviceAccess> accesses;
    for (const auto& [span, access] : t.leaves) {
      EXPECT_TRUE(under(t, span, root))
          << "device leaf on span " << span << " not under the op root";
      accesses.push_back(access);
    }
    std::sort(accesses.begin(), accesses.end());
    return accesses;
  }

  obs::Registry registry_;
  std::unique_ptr<Raid6Array> array_;
};

TEST_F(OpTraceTest, HealthyReadLeavesMatchIoPlan) {
  const int64_t start = 3;
  const int len = 11;
  std::vector<uint8_t> out(static_cast<size_t>(len) * kElem);
  auto accesses = run_traced("array.read", [&] {
    array_->read(start * static_cast<int64_t>(kElem), out);
  });

  AddressMap map(array_->layout());
  IoPlanner planner(map);
  EXPECT_EQ(accesses, predicted(planner.plan_read(start, len),
                                array_->layout().rows(), kElem));
}

TEST_F(OpTraceTest, DegradedReadLeavesMatchIoPlan) {
  const int failed = 2;
  array_->fail_disk(failed);
  const int64_t start = 0;
  const int len = 13;
  std::vector<uint8_t> out(static_cast<size_t>(len) * kElem);
  auto accesses = run_traced("array.read", [&] {
    array_->read(start * static_cast<int64_t>(kElem), out);
  });

  AddressMap map(array_->layout());
  IoPlanner planner(map);
  int fd[1] = {failed};
  EXPECT_EQ(accesses, predicted(planner.plan_degraded_read(start, len, fd),
                                array_->layout().rows(), kElem));
}

TEST_F(OpTraceTest, RmwWriteLeavesMatchIoPlan) {
  const int64_t start = 5;
  const int len = 7;
  auto fresh = random_bytes(static_cast<size_t>(len) * kElem, 99);
  auto accesses = run_traced("array.write", [&] {
    array_->write(start * static_cast<int64_t>(kElem), fresh);
  });

  // The byte-level array always applies delta-based RMW in healthy mode.
  AddressMap map(array_->layout());
  IoPlanner planner(map);
  EXPECT_EQ(accesses,
            predicted(planner.plan_write(start, len,
                                         WritePolicy::kReadModifyWrite),
                      array_->layout().rows(), kElem));
}

// --- pipelined ops ---------------------------------------------------------
// Submitting through the StripePipeline must not change the causal
// story: the worker binds the submitted op's OpContext before calling
// the array, so the root span, engine spans, and device leaves form the
// same tree the synchronous call produces — and still equal the IoPlan.

TEST_F(OpTraceTest, PipelinedWriteLeavesMatchIoPlan) {
  const int64_t start = 5;
  const int len = 7;
  auto fresh = random_bytes(static_cast<size_t>(len) * kElem, 7);
  auto accesses = run_traced("array.write", [&] {
    StripePipeline pipe(*array_, {.workers = 1});
    pipe.submit_write(start * static_cast<int64_t>(kElem), fresh).get();
  });

  AddressMap map(array_->layout());
  IoPlanner planner(map);
  EXPECT_EQ(accesses,
            predicted(planner.plan_write(start, len,
                                         WritePolicy::kReadModifyWrite),
                      array_->layout().rows(), kElem));
}

TEST_F(OpTraceTest, PipelinedReadLeavesMatchIoPlan) {
  const int64_t start = 2;
  const int len = 9;
  std::vector<uint8_t> out(static_cast<size_t>(len) * kElem);
  auto accesses = run_traced("array.read", [&] {
    StripePipeline pipe(*array_, {.workers = 1});
    pipe.submit_read(start * static_cast<int64_t>(kElem), out).get();
  });

  AddressMap map(array_->layout());
  IoPlanner planner(map);
  EXPECT_EQ(accesses, predicted(planner.plan_read(start, len),
                                array_->layout().rows(), kElem));
}

TEST_F(OpTraceTest, MergedPipelinedWritesTraceAsOneOpMatchingTheUnionPlan) {
  // Slow the devices and park the single worker on a read of stripe 3,
  // so two adjacent writes to stripe 0 queue behind it and coalesce:
  // exactly one array.write root span whose leaves equal the planner's
  // plan for the *union* range — the merged batch really did execute as
  // one RMW.
  for (int d = 0; d < array_->layout().cols(); ++d)
    array_->disk(d).faults().set_latency_ns(5'000'000);
  const int64_t stripe_bytes =
      array_->layout().data_count() * static_cast<int64_t>(kElem);
  auto a = random_bytes(2 * kElem, 8);
  auto b = random_bytes(2 * kElem, 9);
  std::vector<uint8_t> park(kElem);
  std::ostringstream trace;
  obs::TraceLog::global().attach(&trace);
  {
    StripePipeline pipe(*array_, {.workers = 1, .merge_limit = 4});
    auto busy = pipe.submit_read(3 * stripe_bytes, park);
    auto f1 = pipe.submit_write(0, a);
    auto f2 = pipe.submit_write(2 * static_cast<int64_t>(kElem), b);
    busy.get();
    f1.get();
    f2.get();
  }
  obs::TraceLog::global().close();
  for (int d = 0; d < array_->layout().cols(); ++d)
    array_->disk(d).faults().set_latency_ns(0);

  ParsedTrace t;
  parse_trace_into(trace.str(), &t);
  // Exactly one write root: the two submitted writes executed as one
  // merged op (the parked read owns the only other root).
  uint64_t write_root = 0;
  int write_roots = 0;
  for (uint64_t r : t.roots) {
    if (t.name_of[r] == "array.write") {
      write_root = r;
      ++write_roots;
    }
  }
  ASSERT_EQ(write_roots, 1);
  std::vector<DeviceAccess> accesses;
  for (const auto& [span, access] : t.leaves)
    if (under(t, span, write_root)) accesses.push_back(access);
  std::sort(accesses.begin(), accesses.end());

  AddressMap map(array_->layout());
  IoPlanner planner(map);
  EXPECT_EQ(accesses,
            predicted(planner.plan_write(0, 4, WritePolicy::kReadModifyWrite),
                      array_->layout().rows(), kElem));
}

}  // namespace
}  // namespace dcode::raid

// Property tests for the decoders across every code: cost accounting
// against theory, peel/GE agreement on random erasure patterns, parity
// column losses, and idempotence.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <tuple>

#include "codes/decoder.h"
#include "codes/encoder.h"
#include "codes/registry.h"
#include "util/rng.h"

namespace dcode::codes {
namespace {

using Param = std::tuple<std::string, int>;

class DecoderProperties : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    layout_ = make_layout(std::get<0>(GetParam()), std::get<1>(GetParam()));
    Pcg32 rng(0xDEC0DE);
    stripe_ = std::make_unique<Stripe>(*layout_, kEsize);
    stripe_->randomize_data(rng);
    encode_stripe(*stripe_);
  }

  static constexpr size_t kEsize = 24;
  std::unique_ptr<CodeLayout> layout_;
  std::unique_ptr<Stripe> stripe_;
};

INSTANTIATE_TEST_SUITE_P(
    AllCodes, DecoderProperties,
    ::testing::Combine(::testing::Values("dcode", "xcode", "rdp", "evenodd",
                                         "hcode", "hdp", "pcode",
                                         "liberation"),
                       ::testing::Values(7, 13)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

TEST_P(DecoderProperties, SingleDataElementLossCostsOneEquation) {
  // Losing one data element must cost exactly |smallest containing
  // equation| - 1 XOR element-ops when peeled.
  Element e = layout_->data_element(layout_->data_count() / 2);
  Stripe broken = stripe_->clone();
  std::memset(broken.at(e), 0, kEsize);
  std::vector<Element> lost = {e};
  auto res = peel_decode(broken, lost);
  ASSERT_TRUE(res.success);
  EXPECT_TRUE(broken.equals(*stripe_));

  size_t smallest = SIZE_MAX;
  for (int qi : layout_->equations_containing(e.row, e.col)) {
    smallest = std::min(smallest,
                        layout_->equations()[static_cast<size_t>(qi)]
                            .sources.size());
  }
  // Peeling uses whatever ready equation it finds first; the cost is that
  // equation's fan-in (sources count, parity included, minus the target),
  // bounded by the largest equation.
  EXPECT_GE(res.xor_ops + 1, smallest);
  EXPECT_EQ(res.steps, 1u);
}

TEST_P(DecoderProperties, ParityColumnsAloneAlwaysRecompute) {
  // Losing only parity elements is always recoverable by re-encoding.
  std::vector<Element> lost;
  for (int r = 0; r < layout_->rows(); ++r) {
    for (int c = 0; c < layout_->cols(); ++c) {
      if (layout_->is_parity(r, c)) lost.push_back(make_element(r, c));
    }
  }
  EXPECT_TRUE(is_recoverable(*layout_, lost));
  Stripe broken = stripe_->clone();
  for (const Element& e : lost) std::memset(broken.at(e), 0xEE, kEsize);
  auto res = hybrid_decode(broken, lost);
  ASSERT_TRUE(res.success);
  EXPECT_TRUE(broken.equals(*stripe_));
}

TEST_P(DecoderProperties, PeelAndGeAgreeOnRandomRecoverablePatterns) {
  Pcg32 rng(99);
  int agreements = 0;
  for (int trial = 0; trial < 40; ++trial) {
    // Random pattern confined to two columns (always recoverable).
    int c1 = rng.next_in_range(0, layout_->cols() - 1);
    int c2 = rng.next_in_range(0, layout_->cols() - 1);
    std::set<Element> chosen;
    int n = rng.next_in_range(1, layout_->rows());
    while (static_cast<int>(chosen.size()) < n) {
      int col = rng.next_below(2) ? c1 : c2;
      chosen.insert(make_element(
          rng.next_in_range(0, layout_->rows() - 1), col));
    }
    std::vector<Element> lost(chosen.begin(), chosen.end());
    ASSERT_TRUE(is_recoverable(*layout_, lost));

    Stripe via_ge = stripe_->clone();
    for (const Element& e : lost) std::memset(via_ge.at(e), 1, kEsize);
    ASSERT_TRUE(ge_decode(via_ge, lost).success);
    EXPECT_TRUE(via_ge.equals(*stripe_));

    Stripe via_hybrid = stripe_->clone();
    for (const Element& e : lost) std::memset(via_hybrid.at(e), 2, kEsize);
    ASSERT_TRUE(hybrid_decode(via_hybrid, lost).success);
    EXPECT_TRUE(via_hybrid.equals(*stripe_));
    ++agreements;
  }
  EXPECT_EQ(agreements, 40);
}

TEST_P(DecoderProperties, DecodeIsIdempotent) {
  // Decoding an intact stripe (nothing lost) is a no-op; decoding twice
  // gives the same bytes.
  std::vector<Element> none;
  Stripe copy = stripe_->clone();
  EXPECT_TRUE(hybrid_decode(copy, none).success);
  EXPECT_TRUE(copy.equals(*stripe_));

  int f = layout_->cols() / 2;
  Stripe broken = stripe_->clone();
  broken.erase_disk(f);
  int fd[1] = {f};
  auto lost = elements_of_disks(*layout_, fd);
  ASSERT_TRUE(hybrid_decode(broken, lost).success);
  ASSERT_TRUE(hybrid_decode(broken, lost).success);  // again, from valid data
  EXPECT_TRUE(broken.equals(*stripe_));
}

TEST_P(DecoderProperties, EncoderIsDeterministicAndIdempotent) {
  Stripe again = stripe_->clone();
  encode_stripe(again);
  EXPECT_TRUE(again.equals(*stripe_));
}

TEST_P(DecoderProperties, WholeStripeLossIsUnrecoverable) {
  std::vector<Element> all;
  for (int r = 0; r < layout_->rows(); ++r) {
    for (int c = 0; c < layout_->cols(); ++c) {
      all.push_back(make_element(r, c));
    }
  }
  EXPECT_FALSE(is_recoverable(*layout_, all));
}

}  // namespace
}  // namespace dcode::codes

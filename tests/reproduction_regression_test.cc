// Reproduction regression locks: the headline paper-shape results from
// EXPERIMENTS.md, asserted with tolerance bands at reduced operation
// counts. If a change to a layout, planner, or the disk model breaks the
// reproduction, this file says so before the benches do.
#include <gtest/gtest.h>

#include <cmath>

#include "codes/registry.h"
#include "raid/recovery.h"
#include "sim/experiments.h"

namespace dcode {
namespace {

constexpr uint64_t kSeed = 0x2EF20;
constexpr int kOps = 800;

double io_cost(const char* name, sim::WorkloadKind kind) {
  auto layout = codes::make_layout(name, 13);
  return static_cast<double>(
      sim::run_load_experiment(*layout, kind, kSeed, false, kOps).io_cost);
}

TEST(ReproductionLock, Figure5ReadIntensiveDeltasAtP13) {
  // Paper: D-Code 16.0% / 15.3% below HDP / X-Code; we lock 10–25%.
  double dc = io_cost("dcode", sim::WorkloadKind::kReadIntensive);
  double hdp = io_cost("hdp", sim::WorkloadKind::kReadIntensive);
  double xc = io_cost("xcode", sim::WorkloadKind::kReadIntensive);
  EXPECT_GT(1.0 - dc / hdp, 0.10);
  EXPECT_LT(1.0 - dc / hdp, 0.25);
  EXPECT_GT(1.0 - dc / xc, 0.10);
  EXPECT_LT(1.0 - dc / xc, 0.25);
}

TEST(ReproductionLock, Figure5MixedDeltasAtP13) {
  // Paper: 23.1% / 22.2%; we lock 15–30%. RDP/H-Code within ±6%.
  double dc = io_cost("dcode", sim::WorkloadKind::kMixed);
  EXPECT_GT(1.0 - dc / io_cost("hdp", sim::WorkloadKind::kMixed), 0.15);
  EXPECT_LT(1.0 - dc / io_cost("hdp", sim::WorkloadKind::kMixed), 0.30);
  EXPECT_GT(1.0 - dc / io_cost("xcode", sim::WorkloadKind::kMixed), 0.15);
  double rdp = io_cost("rdp", sim::WorkloadKind::kMixed);
  EXPECT_LT(std::abs(dc - rdp) / rdp, 0.06);
}

TEST(ReproductionLock, Figure4BalanceClasses) {
  // Well-balanced codes stay under 1.2 on mixed; RDP stays above 3 at
  // p=13; H-Code sits in between.
  auto lf = [&](const char* name) {
    auto layout = codes::make_layout(name, 13);
    return sim::run_load_experiment(*layout, sim::WorkloadKind::kMixed,
                                    kSeed, false, kOps)
        .load_balancing_factor;
  };
  EXPECT_LT(lf("dcode"), 1.2);
  EXPECT_LT(lf("xcode"), 1.2);
  EXPECT_LT(lf("hdp"), 1.2);
  EXPECT_GT(lf("rdp"), 3.0);
  double hc = lf("hcode");
  EXPECT_GT(hc, 1.2);
  EXPECT_LT(hc, 3.0);
}

TEST(ReproductionLock, Figure6NormalReadOrdering) {
  sim::DiskModelParams params;
  auto speed = [&](const char* name) {
    auto layout = codes::make_layout(name, 13);
    return sim::run_normal_read_experiment(*layout, kSeed, params, 400)
        .read_mb_s;
  };
  double dc = speed("dcode");
  EXPECT_NEAR(dc / speed("xcode"), 1.0, 0.01) << "identical data layouts";
  EXPECT_GT(dc, speed("rdp"));
  EXPECT_GT(dc, speed("hcode"));
}

TEST(ReproductionLock, Figure7DegradedReadOrdering) {
  sim::DiskModelParams params;
  auto speed = [&](const char* name) {
    auto layout = codes::make_layout(name, 13);
    return sim::run_degraded_read_experiment(*layout, kSeed, params, 30)
        .read_mb_s;
  };
  double dc = speed("dcode");
  // Paper: D-Code 11.6–26.0% over X-Code (ours runs larger at p=13);
  // RDP/H-Code slightly above D-Code.
  EXPECT_GT(dc / speed("xcode"), 1.10);
  EXPECT_GT(speed("rdp"), dc * 0.98);
  EXPECT_GT(speed("hcode"), dc * 0.98);
}

TEST(ReproductionLock, RecoveryReadSavingAtP13) {
  // Paper §III-D (via Xu et al.): ~25% asymptotically; 21.8% measured at
  // p=13; we lock 18–26% and the D-Code == X-Code identity (Theorem 1).
  for (const char* name : {"dcode", "xcode"}) {
    auto layout = codes::make_layout(name, 13);
    double conv = 0, opt = 0;
    for (int f = 0; f < layout->cols(); ++f) {
      conv += static_cast<double>(
          raid::plan_single_disk_recovery(
              *layout, f, raid::RecoveryStrategy::kConventional)
              .reads.size());
      opt += static_cast<double>(
          raid::plan_single_disk_recovery(
              *layout, f, raid::RecoveryStrategy::kMinimalReads)
              .reads.size());
    }
    double saving = 1.0 - opt / conv;
    EXPECT_GT(saving, 0.18) << name;
    EXPECT_LT(saving, 0.26) << name;
  }
  auto d = codes::make_layout("dcode", 13);
  auto x = codes::make_layout("xcode", 13);
  for (int f = 0; f < 13; ++f) {
    EXPECT_EQ(raid::plan_single_disk_recovery(
                  *d, f, raid::RecoveryStrategy::kMinimalReads)
                  .reads.size(),
              raid::plan_single_disk_recovery(
                  *x, f, raid::RecoveryStrategy::kMinimalReads)
                  .reads.size())
        << "Theorem 1 identity broken at disk " << f;
  }
}

}  // namespace
}  // namespace dcode

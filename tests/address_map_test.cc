// Property tests for the logical address map and rotation.
#include <gtest/gtest.h>

#include <set>

#include "codes/registry.h"
#include "raid/address_map.h"

namespace dcode::raid {
namespace {

TEST(AddressMap, LocateRoundTripsWithinStripes) {
  for (const auto& name : codes::all_code_names()) {
    auto layout = codes::make_layout(name, 7);
    AddressMap map(*layout);
    const int64_t dps = map.data_per_stripe();
    EXPECT_EQ(dps, layout->data_count());
    for (int64_t g : {int64_t{0}, dps - 1, dps, 3 * dps + 5}) {
      auto loc = map.locate(g);
      EXPECT_EQ(loc.stripe, g / dps);
      EXPECT_EQ(layout->data_index(loc.element.row, loc.element.col),
                static_cast<int>(g % dps));
      EXPECT_EQ(loc.disk, loc.element.col) << "no rotation: identity";
    }
  }
}

TEST(AddressMap, ConsecutiveElementsAdvanceRowMajor) {
  auto layout = codes::make_layout("dcode", 7);
  AddressMap map(*layout);
  for (int64_t g = 0; g + 1 < 2 * map.data_per_stripe(); ++g) {
    auto a = map.locate(g);
    auto b = map.locate(g + 1);
    if (a.stripe == b.stripe) {
      // Row-major: strictly increasing (row, col).
      EXPECT_LT(a.element, b.element);
    } else {
      EXPECT_EQ(b.stripe, a.stripe + 1);
      EXPECT_EQ(b.element, layout->data_element(0));
    }
  }
}

TEST(AddressMap, RotationIsAPermutationPerStripe) {
  auto layout = codes::make_layout("rdp", 7);
  AddressMap map(*layout, /*rotate=*/true);
  for (int64_t s = 0; s < 10; ++s) {
    std::set<int> disks;
    for (int c = 0; c < layout->cols(); ++c) {
      int d = map.physical_disk(s, c);
      EXPECT_GE(d, 0);
      EXPECT_LT(d, layout->cols());
      EXPECT_TRUE(disks.insert(d).second) << "collision in stripe " << s;
    }
  }
}

TEST(AddressMap, RotationShiftsByOneEachStripe) {
  auto layout = codes::make_layout("dcode", 5);
  AddressMap map(*layout, /*rotate=*/true);
  EXPECT_EQ(map.physical_disk(0, 0), 0);
  EXPECT_EQ(map.physical_disk(1, 0), 1);
  EXPECT_EQ(map.physical_disk(4, 0), 4);
  EXPECT_EQ(map.physical_disk(5, 0), 0);  // wraps at cols
  EXPECT_EQ(map.physical_disk(1, 4), 0);
}

TEST(AddressMap, RotationSpreadsAColumnAcrossAllDisks) {
  // Over cols consecutive stripes, column 0 visits every physical disk —
  // the "global" balance rotation buys (and the only balance it buys).
  auto layout = codes::make_layout("rdp", 7);
  AddressMap map(*layout, true);
  std::set<int> seen;
  for (int64_t s = 0; s < layout->cols(); ++s) {
    seen.insert(map.physical_disk(s, layout->cols() - 1));  // parity col
  }
  EXPECT_EQ(static_cast<int>(seen.size()), layout->cols());
}

TEST(AddressMap, NegativeAddressRejected) {
  auto layout = codes::make_layout("dcode", 5);
  AddressMap map(*layout);
  EXPECT_THROW((void)map.locate(-1), std::logic_error);
}

}  // namespace
}  // namespace dcode::raid
